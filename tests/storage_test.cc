// Tests for the storage substrate: CRC32, the ZVF1 video file format
// (round-trips and corruption handling), VideoStore, dataset persistence,
// and the Catalog.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "storage/catalog.h"
#include "storage/video_file.h"
#include "storage/video_store.h"
#include "video/dataset.h"

namespace zeus {
namespace {

namespace fs = std::filesystem;

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      testing::TempDir() + "/zeus_storage_" + tag + std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

video::Video MakeVideo(int id, int frames = 24, int side = 12,
                       uint64_t seed = 7) {
  common::Rng rng(seed);
  video::Video v(frames, side, side);
  for (int f = 0; f < frames; ++f) {
    float* data = v.FrameData(f);
    for (int i = 0; i < side * side; ++i) {
      data[i] = rng.NextFloat();
    }
  }
  // A couple of label runs so RLE has work to do.
  for (int f = 4; f < std::min(9, frames); ++f) {
    v.SetLabel(f, video::ActionClass::kCrossRight);
  }
  for (int f = 12; f < std::min(15, frames); ++f) {
    v.SetLabel(f, video::ActionClass::kLeftTurn);
  }
  v.set_id(id);
  return v;
}

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  const char msg[] = "123456789";
  EXPECT_EQ(common::Crc32(0, msg, 9), 0xCBF43926u);
  // Empty input is the identity.
  EXPECT_EQ(common::Crc32(0, msg, 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesSingleShot) {
  const std::string data = "zeus localizes actions with reinforcement";
  uint32_t whole = common::Crc32(0, data.data(), data.size());
  uint32_t crc = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    size_t n = std::min<size_t>(7, data.size() - i);
    crc = common::Crc32(crc, data.data() + i, n);
  }
  EXPECT_EQ(crc, whole);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  uint32_t clean = common::Crc32(0, data.data(), data.size());
  data[100] = static_cast<char>(data[100] ^ 0x10);
  EXPECT_NE(common::Crc32(0, data.data(), data.size()), clean);
}

// ---------------------------------------------------------------------------
// VideoFile

TEST(VideoFileTest, Float32RoundTripIsLossless) {
  const auto v = MakeVideo(1);
  const std::string path = testing::TempDir() + "/vf_f32.zvf";
  ASSERT_TRUE(
      storage::VideoFile::Save(path, v, storage::PixelEncoding::kFloat32).ok());
  auto loaded = storage::VideoFile::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const video::Video& w = loaded.value();
  ASSERT_EQ(w.num_frames(), v.num_frames());
  ASSERT_EQ(w.height(), v.height());
  ASSERT_EQ(w.width(), v.width());
  EXPECT_EQ(w.id(), v.id());
  for (int f = 0; f < v.num_frames(); ++f) {
    const float* a = v.FrameData(f);
    const float* b = w.FrameData(f);
    for (int i = 0; i < v.height() * v.width(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "frame " << f << " pixel " << i;
    }
    EXPECT_EQ(w.Label(f), v.Label(f));
  }
}

TEST(VideoFileTest, Uint8RoundTripErrorIsBounded) {
  const auto v = MakeVideo(2, 16, 10);
  const std::string path = testing::TempDir() + "/vf_u8.zvf";
  ASSERT_TRUE(
      storage::VideoFile::Save(path, v, storage::PixelEncoding::kUint8).ok());
  auto loaded = storage::VideoFile::Load(path);
  ASSERT_TRUE(loaded.ok());
  const video::Video& w = loaded.value();
  // Pixels are in [0, 1]; quantization error must be <= range/255/2 + eps.
  const float bound = 1.0f / 255.0f / 2.0f + 1e-5f;
  for (int f = 0; f < v.num_frames(); ++f) {
    const float* a = v.FrameData(f);
    const float* b = w.FrameData(f);
    for (int i = 0; i < v.height() * v.width(); ++i) {
      ASSERT_NEAR(a[i], b[i], bound);
    }
  }
  // Labels are exact regardless of pixel encoding.
  for (int f = 0; f < v.num_frames(); ++f) EXPECT_EQ(w.Label(f), v.Label(f));
}

TEST(VideoFileTest, ConstantFrameQuantizesWithoutDivideByZero) {
  video::Video v(3, 4, 4);
  for (int f = 0; f < 3; ++f) {
    float* d = v.FrameData(f);
    for (int i = 0; i < 16; ++i) d[i] = 0.5f;
  }
  v.set_id(11);
  const std::string path = testing::TempDir() + "/vf_const.zvf";
  ASSERT_TRUE(
      storage::VideoFile::Save(path, v, storage::PixelEncoding::kUint8).ok());
  auto loaded = storage::VideoFile::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(loaded.value().FrameData(0)[0], 0.5f, 1e-2f);
}

TEST(VideoFileTest, RejectsBadMagic) {
  const std::string path = testing::TempDir() + "/vf_magic.zvf";
  std::ofstream(path, std::ios::binary) << "not a video file at all";
  auto loaded = storage::VideoFile::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST(VideoFileTest, RejectsMissingFile) {
  auto loaded = storage::VideoFile::Load(testing::TempDir() + "/nonexistent");
  ASSERT_FALSE(loaded.ok());
}

// Corruption matrix: flip one byte at several offsets; every case must be
// rejected by the checksum (or structural validation), never returned as a
// silently wrong video.
class VideoFileCorruptionTest : public testing::TestWithParam<size_t> {};

TEST_P(VideoFileCorruptionTest, FlippedByteIsDetected) {
  const auto v = MakeVideo(3);
  const std::string path = testing::TempDir() + "/vf_corrupt.zvf";
  ASSERT_TRUE(
      storage::VideoFile::Save(path, v, storage::PixelEncoding::kUint8).ok());

  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<size_t>(f.tellg());
  const size_t offset = GetParam() % size;
  // Skip the magic word: corrupting it is tested separately and reports a
  // different (equally fatal) error.
  const size_t target = std::max<size_t>(offset, 4);
  f.seekg(static_cast<std::streamoff>(target));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(target));
  f.write(&byte, 1);
  f.close();

  auto loaded = storage::VideoFile::Load(path);
  EXPECT_FALSE(loaded.ok()) << "byte " << target << " flip undetected";
}

INSTANTIATE_TEST_SUITE_P(Offsets, VideoFileCorruptionTest,
                         testing::Values(4, 9, 13, 21, 40, 100, 500, 1500,
                                         2500, 2879));

TEST(VideoFileTest, TruncationIsDetected) {
  const auto v = MakeVideo(4);
  const std::string path = testing::TempDir() + "/vf_trunc.zvf";
  ASSERT_TRUE(
      storage::VideoFile::Save(path, v, storage::PixelEncoding::kFloat32).ok());
  const auto size = fs::file_size(path);
  for (size_t keep : {size / 4, size / 2, size - 1}) {
    fs::resize_file(path, keep);
    auto loaded = storage::VideoFile::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << keep << " undetected";
  }
}

// ---------------------------------------------------------------------------
// VideoStore

TEST(VideoStoreTest, PutGetRemove) {
  auto store = storage::VideoStore::Open(UniqueDir("store"));
  ASSERT_TRUE(store.ok());
  auto& s = store.value();

  EXPECT_EQ(s.size(), 0u);
  ASSERT_TRUE(s.Put(MakeVideo(10)).ok());
  ASSERT_TRUE(s.Put(MakeVideo(11)).ok());
  EXPECT_TRUE(s.Contains(10));
  EXPECT_FALSE(s.Contains(12));
  EXPECT_EQ(s.size(), 2u);

  auto v = s.Get(10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().id(), 10);

  EXPECT_EQ(s.Get(99).status().code(), common::StatusCode::kNotFound);
  EXPECT_EQ(s.Put(MakeVideo(10)).code(), common::StatusCode::kAlreadyExists);

  ASSERT_TRUE(s.Remove(10).ok());
  EXPECT_FALSE(s.Contains(10));
  EXPECT_FALSE(fs::exists(s.PathFor(10)));
  EXPECT_EQ(s.Remove(10).code(), common::StatusCode::kNotFound);
}

TEST(VideoStoreTest, ReopenPreservesInsertionOrder) {
  const std::string dir = UniqueDir("reopen");
  {
    auto store = storage::VideoStore::Open(dir);
    ASSERT_TRUE(store.ok());
    for (int id : {42, 7, 19}) ASSERT_TRUE(store.value().Put(MakeVideo(id)).ok());
  }
  auto reopened = storage::VideoStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().ids(), (std::vector<int>{42, 7, 19}));
  auto v = reopened.value().Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().id(), 7);
}

TEST(VideoStoreTest, DatasetRoundTripPreservesLabelsAndSplits) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 6;
  profile.frames_per_video = 120;
  auto ds = video::SyntheticDataset::Generate(profile, 99);

  const std::string dir = UniqueDir("dataset");
  ASSERT_TRUE(storage::SaveDataset(dir, ds).ok());
  auto loaded = storage::LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& ds2 = loaded.value();

  EXPECT_EQ(ds2.num_videos(), ds.num_videos());
  EXPECT_EQ(ds2.train_indices(), ds.train_indices());
  EXPECT_EQ(ds2.val_indices(), ds.val_indices());
  EXPECT_EQ(ds2.test_indices(), ds.test_indices());
  EXPECT_EQ(ds2.profile().family, ds.profile().family);
  EXPECT_EQ(ds2.profile().classes, ds.profile().classes);
  EXPECT_DOUBLE_EQ(ds2.profile().action_fraction,
                   ds.profile().action_fraction);
  // Ground-truth labels survive bit-for-bit even with lossy pixel encoding.
  for (size_t i = 0; i < ds.num_videos(); ++i) {
    ASSERT_EQ(ds2.video(i).labels(), ds.video(i).labels()) << "video " << i;
  }
  // Statistics computed from the reloaded dataset match (labels identical).
  auto s1 = ds.ComputeStatistics();
  auto s2 = ds2.ComputeStatistics();
  EXPECT_EQ(s2.num_instances, s1.num_instances);
  EXPECT_DOUBLE_EQ(s2.percent_action_frames, s1.percent_action_frames);
}

TEST(VideoStoreTest, LoadDatasetFailsWithoutManifest) {
  const std::string dir = UniqueDir("nomanifest");
  ASSERT_TRUE(storage::VideoStore::Open(dir).ok());  // creates empty dir
  EXPECT_FALSE(storage::LoadDataset(dir).ok());
}

TEST(VideoStoreTest, LoadDatasetRejectsOutOfRangeSplit) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 3;
  profile.frames_per_video = 60;
  auto ds = video::SyntheticDataset::Generate(profile, 5);
  const std::string dir = UniqueDir("badsplit");
  ASSERT_TRUE(storage::SaveDataset(dir, ds).ok());

  // Corrupt the split line.
  const std::string manifest = dir + "/DATASET";
  std::ifstream is(manifest);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  is.close();
  auto pos = content.find("train ");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, 7, "train 9");
  std::ofstream(manifest, std::ios::trunc) << content;

  EXPECT_FALSE(storage::LoadDataset(dir).ok());
}

// ---------------------------------------------------------------------------
// VideoStore append mode (live-stream ingest)

bool SameVideo(const video::Video& a, const video::Video& b) {
  if (a.num_frames() != b.num_frames() || a.height() != b.height() ||
      a.width() != b.width() || a.labels() != b.labels()) {
    return false;
  }
  for (int f = 0; f < a.num_frames(); ++f) {
    const float* pa = a.FrameData(f);
    const float* pb = b.FrameData(f);
    for (int i = 0; i < a.height() * a.width(); ++i) {
      if (pa[i] != pb[i]) return false;
    }
  }
  return true;
}

TEST(VideoStoreAppendTest, AppendRoundTripsLosslessly) {
  auto store = storage::VideoStore::Open(UniqueDir("append"));
  ASSERT_TRUE(store.ok());
  auto& s = store.value();
  // Base saved float32 so the whole reconstruction is bit-exact.
  auto base = MakeVideo(1, 20, 8);
  ASSERT_TRUE(s.Put(base, storage::PixelEncoding::kFloat32).ok());

  auto tail1 = MakeVideo(1, 6, 8, /*seed=*/11);
  auto tail2 = MakeVideo(1, 9, 8, /*seed=*/12);
  ASSERT_TRUE(s.AppendFrames(1, tail1).ok());
  ASSERT_TRUE(s.AppendFrames(1, tail2).ok());

  auto committed = s.CommittedFrames(1);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), 35);

  video::Video expect = base;
  expect.Append(tail1);
  expect.Append(tail2);
  auto got = s.Get(1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameVideo(expect, got.value()));
}

TEST(VideoStoreAppendTest, RejectsShapeMismatchAndUnknownId) {
  auto store = storage::VideoStore::Open(UniqueDir("appendbad"));
  ASSERT_TRUE(store.ok());
  auto& s = store.value();
  ASSERT_TRUE(s.Put(MakeVideo(1, 10, 8)).ok());
  EXPECT_EQ(s.AppendFrames(1, MakeVideo(1, 4, 6)).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AppendFrames(9, MakeVideo(9, 4, 8)).code(),
            common::StatusCode::kNotFound);
}

TEST(VideoStoreAppendTest, TornAppendLeavesPriorSnapshotByteIdentical) {
  // SIGKILL simulation: the crash window of AppendFrames is "tail bytes
  // (partially) written, commit sidecar still old". Every cut point in
  // that window must leave the previously committed snapshot readable,
  // byte-identical — the commit sidecar is the only length readers trust.
  auto store = storage::VideoStore::Open(UniqueDir("torn"));
  ASSERT_TRUE(store.ok());
  auto& s = store.value();
  auto base = MakeVideo(1, 12, 6);
  ASSERT_TRUE(s.Put(base, storage::PixelEncoding::kFloat32).ok());
  auto tail1 = MakeVideo(1, 5, 6, /*seed=*/21);
  ASSERT_TRUE(s.AppendFrames(1, tail1).ok());
  auto snapshot = s.Get(1);
  ASSERT_TRUE(snapshot.ok());
  const auto committed_tail_bytes = fs::file_size(s.TailPathFor(1));

  // A second append dies mid-write: emulate every torn state by writing
  // garbage of increasing length past the committed tail bytes, leaving
  // the commit sidecar untouched (AtomicWriteFile never exposes a torn
  // commit, so this is the full crash surface).
  common::Rng rng(3);
  for (size_t garbage : {size_t{1}, size_t{37}, size_t{4 + 6 * 6 * 4},
                         size_t{3 * (4 + 6 * 6 * 4) + 17}}) {
    fs::resize_file(s.TailPathFor(1), committed_tail_bytes);
    std::ofstream os(s.TailPathFor(1),
                     std::ios::binary | std::ios::app);
    std::string junk(garbage, '\0');
    for (auto& c : junk) c = static_cast<char>(rng.NextInt(0, 255));
    os.write(junk.data(), static_cast<std::streamoff>(junk.size()));
    os.close();

    auto read = s.Get(1);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_TRUE(SameVideo(snapshot.value(), read.value()))
        << "garbage bytes: " << garbage;
    auto committed = s.CommittedFrames(1);
    ASSERT_TRUE(committed.ok());
    EXPECT_EQ(committed.value(), 17);
  }

  // Keep the real committed bytes so they can be restored after the
  // destructive truncation below (resize_file re-extends with zeros,
  // which is corruption, not recovery).
  std::string committed_bytes;
  {
    std::ifstream is(s.TailPathFor(1), std::ios::binary);
    committed_bytes.assign((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    committed_bytes.resize(committed_tail_bytes);
  }

  // A stale-length crash the other way: tail bytes SHORTER than a commit
  // claims (commit landed, tail lost — cannot happen with our write
  // order, but readers must still fail loudly, never return garbage).
  fs::resize_file(s.TailPathFor(1), committed_tail_bytes - 3);
  EXPECT_FALSE(s.Get(1).ok());

  // Recovery: restore the committed bytes and the next append proceeds
  // on top of the prior snapshot as if the torn write never happened.
  std::ofstream(s.TailPathFor(1), std::ios::binary | std::ios::trunc)
      << committed_bytes << std::string(64, 'x');  // torn garbage again
  auto tail2 = MakeVideo(1, 4, 6, /*seed=*/22);
  ASSERT_TRUE(s.AppendFrames(1, tail2).ok());
  video::Video expect = snapshot.value();
  expect.Append(tail2);
  auto final_read = s.Get(1);
  ASSERT_TRUE(final_read.ok());
  EXPECT_TRUE(SameVideo(expect, final_read.value()));
}

TEST(VideoStoreAppendTest, GrownDatasetRoundTripsThroughSaveLoad) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 5;
  profile.frames_per_video = 60;
  profile.native_resolution = 12;
  auto ds = video::SyntheticDataset::Generate(profile, 7);
  ASSERT_TRUE(ds.GrowTo(150, 4).ok());

  const std::string dir = UniqueDir("growds");
  ASSERT_TRUE(storage::SaveDataset(dir, ds).ok());
  auto loaded = storage::LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto& ds2 = loaded.value();
  EXPECT_EQ(ds2.frame_epoch(), 4u);
  EXPECT_EQ(ds2.base_frames(), 60);
  EXPECT_EQ(ds2.stream_length(), 150);
  ASSERT_TRUE(ds2.streamable());
  // The reloaded dataset keeps growing on the same deterministic stream:
  // labels (lossless) match a fresh growth of the original.
  ASSERT_TRUE(ds2.GrowTo(220, 5).ok());
  ASSERT_TRUE(ds.GrowTo(220, 5).ok());
  for (size_t i = 0; i < ds.num_videos(); ++i) {
    EXPECT_EQ(ds.video(i).labels(), ds2.video(i).labels()) << "video " << i;
  }
}

// ---------------------------------------------------------------------------
// Catalog

TEST(CatalogTest, DatasetRegistrationRoundTrip) {
  const std::string root = UniqueDir("catalog");
  {
    auto cat = storage::Catalog::Open(root);
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE(cat.value().AddDataset("bdd", "bdd_corpus").ok());
    ASSERT_TRUE(cat.value().AddDataset("thumos", "/abs/thumos").ok());
    EXPECT_EQ(cat.value().AddDataset("bdd", "x").code(),
              common::StatusCode::kAlreadyExists);
  }
  auto reopened = storage::Catalog::Open(root);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().DatasetNames(),
            (std::vector<std::string>{"bdd", "thumos"}));
  // Relative dirs resolve under the root; absolute dirs pass through.
  auto dir = reopened.value().DatasetDir("bdd");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir.value(), (fs::path(root) / "bdd_corpus").string());
  EXPECT_EQ(reopened.value().DatasetDir("thumos").value(), "/abs/thumos");
  EXPECT_EQ(reopened.value().DatasetDir("nope").status().code(),
            common::StatusCode::kNotFound);
}

TEST(CatalogTest, PlanRegistrationReplacesOnSameKey) {
  auto cat = storage::Catalog::Open(UniqueDir("plans"));
  ASSERT_TRUE(cat.ok());
  storage::PlanEntry e{"bdd", "CrossRight", 0.85, "plans/p1"};
  ASSERT_TRUE(cat.value().AddPlan(e).ok());
  e.prefix = "plans/p2";
  ASSERT_TRUE(cat.value().AddPlan(e).ok());
  ASSERT_EQ(cat.value().plans().size(), 1u);
  auto found = cat.value().FindPlan("bdd", "CrossRight", 0.85);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->prefix, "plans/p2");
  EXPECT_FALSE(cat.value().FindPlan("bdd", "CrossRight", 0.80).has_value());
  EXPECT_FALSE(cat.value().FindPlan("bdd", "LeftTurn", 0.85).has_value());
}

TEST(CatalogTest, PersistsPlansAcrossReopen) {
  const std::string root = UniqueDir("persist");
  {
    auto cat = storage::Catalog::Open(root);
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE(cat.value()
                    .AddPlan({"bdd", "CrossRight,CrossLeft", 0.8, "p/multi"})
                    .ok());
  }
  auto cat = storage::Catalog::Open(root);
  ASSERT_TRUE(cat.ok());
  auto found = cat.value().FindPlan("bdd", "CrossRight,CrossLeft", 0.8);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->prefix, "p/multi");
}

TEST(CatalogTest, PlanMatchingQuantizesToAccuracyBands) {
  // Regression: plan lookups used raw float equality (abs diff < 1e-9),
  // which aliased near-boundary targets after a persist/reopen round trip
  // (the file stores %.3f, so a target carrying float noise no longer
  // matched its own entry). All matching now goes through the
  // milli-accuracy band grid (core/accuracy.h).
  const std::string root = UniqueDir("bands");
  {
    auto cat = storage::Catalog::Open(root);
    ASSERT_TRUE(cat.ok());
    // A target with sub-band float noise lands on the 0.800 grid point.
    ASSERT_TRUE(
        cat.value().AddPlan({"bdd", "CrossRight", 0.8 + 1e-12, "p/a"}).ok());
    // Near-boundary lookups on the same band match...
    EXPECT_TRUE(cat.value().FindPlan("bdd", "CrossRight", 0.8).has_value());
    EXPECT_TRUE(
        cat.value().FindPlan("bdd", "CrossRight", 0.8 - 1e-12).has_value());
    // ...and adjacent bands stay distinct, even one grid step away.
    EXPECT_FALSE(cat.value().FindPlan("bdd", "CrossRight", 0.85).has_value());
    EXPECT_FALSE(cat.value().FindPlan("bdd", "CrossRight", 0.801).has_value());
    // Replacement keys on the band too: 0.85 and 0.85+noise are one entry.
    ASSERT_TRUE(cat.value().AddPlan({"bdd", "LeftTurn", 0.85, "p/b1"}).ok());
    ASSERT_TRUE(
        cat.value().AddPlan({"bdd", "LeftTurn", 0.85 + 1e-12, "p/b2"}).ok());
    ASSERT_EQ(cat.value().plans().size(), 2u);
    EXPECT_EQ(cat.value().FindPlan("bdd", "LeftTurn", 0.85)->prefix, "p/b2");
  }
  // The band survives the %.3f persist/reopen round trip bit-for-bit.
  auto cat = storage::Catalog::Open(root);
  ASSERT_TRUE(cat.ok());
  EXPECT_TRUE(cat.value().FindPlan("bdd", "CrossRight", 0.8).has_value());
  EXPECT_TRUE(
      cat.value().FindPlan("bdd", "CrossRight", 0.8 + 1e-12).has_value());
  EXPECT_FALSE(cat.value().FindPlan("bdd", "CrossRight", 0.805).has_value());
}

TEST(CatalogTest, RejectsWhitespaceInTokens) {
  auto cat = storage::Catalog::Open(UniqueDir("ws"));
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat.value().AddDataset("my data", "d").code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.value().AddPlan({"bdd", "Cross Right", 0.8, "p"}).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RejectsCorruptCatalogFile) {
  const std::string root = UniqueDir("corrupt");
  ASSERT_TRUE(storage::Catalog::Open(root).ok());
  std::ofstream(root + "/CATALOG", std::ios::trunc)
      << "plan too few fields\n";
  EXPECT_FALSE(storage::Catalog::Open(root).ok());
}

}  // namespace
}  // namespace zeus
