// Tests for plan checkpointing (PlanIo) and the parallel feature
// pre-extraction path.

#include <fstream>

#include <gtest/gtest.h>

#include "apfg/feature_cache.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/plan_io.h"
#include "core/query_planner.h"
#include "tensor/tensor_ops.h"
#include "video/dataset.h"

namespace zeus {
namespace {

video::DatasetProfile SmallProfile() {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 12;
  profile.frames_per_video = 200;
  return profile;
}

core::QueryPlanner::Options FastPlannerOptions() {
  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 4;
  opts.profile.max_windows_per_config = 60;
  opts.trainer.episodes = 3;
  opts.trainer.min_buffer = 32;
  opts.trainer.agent.batch_size = 32;
  opts.max_rl_configs = 4;
  return opts;
}

TEST(ThreadPoolTest, RunsAllTasks) {
  common::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  common::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(50);
  common::ParallelFor(&pool, 50, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  int sum = 0;
  common::ParallelFor(nullptr, 10, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(FeatureCachePrecomputeTest, ParallelMatchesSerial) {
  common::Rng rng(3);
  apfg::Apfg apfg(apfg::ApfgTrainOptions{}, true, &rng);
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 71);
  std::vector<const video::Video*> vids;
  for (size_t i = 0; i < 3; ++i) vids.push_back(&ds.video(i));
  video::DecodeSpec spec{15, 4, 2};

  apfg::FeatureCache serial(&apfg), parallel(&apfg);
  for (const video::Video* v : vids) serial.Precompute(*v, spec, 16);
  common::ThreadPool pool(2);
  parallel.PrecomputeParallel(vids, spec, 16, &pool);
  EXPECT_EQ(serial.size(), parallel.size());
  // Spot-check one entry for identical outputs.
  const auto& a = serial.Get(*vids[0], 16, spec);
  const auto& b = parallel.Get(*vids[0], 16, spec);
  EXPECT_LT(tensor::MaxAbsDiff(a.feature, b.feature), 1e-6f);
}

TEST(PlanIoTest, SaveLoadRoundTripExecutesIdentically) {
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 72);
  auto opts = FastPlannerOptions();
  core::QueryPlanner planner(&ds, opts);
  auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
  ASSERT_TRUE(plan.ok());

  std::string prefix = testing::TempDir() + "/zeus_plan";
  ASSERT_TRUE(core::PlanIo::Save(prefix, plan.value()).ok());

  auto loaded = core::PlanIo::Load(prefix, video::DatasetFamily::kBdd100kLike,
                                   opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().targets, plan.value().targets);
  EXPECT_DOUBLE_EQ(loaded.value().accuracy_target,
                   plan.value().accuracy_target);
  EXPECT_EQ(loaded.value().rl_space.size(), plan.value().rl_space.size());

  // The reloaded plan must reproduce the original executor's output
  // bit-for-bit (same weights, same thresholds, greedy policy).
  auto test = planner.SplitVideos(ds.test_indices());
  core::QueryExecutor original(&plan.value());
  core::QueryExecutor restored(&loaded.value());
  auto run_a = original.Localize(test);
  auto run_b = restored.Localize(test);
  ASSERT_EQ(run_a.masks.size(), run_b.masks.size());
  for (size_t i = 0; i < run_a.masks.size(); ++i) {
    EXPECT_EQ(run_a.masks[i], run_b.masks[i]) << "video " << i;
  }
  EXPECT_EQ(run_a.invocations, run_b.invocations);
}

TEST(PlanIoTest, LoadRejectsMissingFiles) {
  auto r = core::PlanIo::Load(testing::TempDir() + "/no_such_plan",
                              video::DatasetFamily::kBdd100kLike,
                              FastPlannerOptions());
  EXPECT_FALSE(r.ok());
}

TEST(PlanIoTest, CorruptCheckpointIsRejected) {
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 74);
  auto opts = FastPlannerOptions();
  core::QueryPlanner planner(&ds, opts);
  auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
  ASSERT_TRUE(plan.ok());
  std::string prefix = testing::TempDir() + "/zeus_plan_corrupt";
  ASSERT_TRUE(core::PlanIo::Save(prefix, plan.value()).ok());

  // Truncate the DQN weight file: load must fail, not return garbage.
  {
    std::ofstream trunc(prefix + ".dqn",
                        std::ios::binary | std::ios::trunc);
    trunc << "zz";
  }
  auto loaded = core::PlanIo::Load(prefix, video::DatasetFamily::kBdd100kLike,
                                   opts);
  EXPECT_FALSE(loaded.ok());
}

TEST(PlanIoTest, SaveRejectsUntrainedPlan) {
  core::QueryPlan plan;
  EXPECT_FALSE(core::PlanIo::Save(testing::TempDir() + "/p", plan).ok());
}

}  // namespace
}  // namespace zeus
