// Tests for plan checkpointing (PlanIo) and the parallel feature
// pre-extraction path.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "apfg/feature_cache.h"
#include "common/crc32.h"
#include "common/fileutil.h"
#include "common/stringutil.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/plan_io.h"
#include "core/query_planner.h"
#include "engine/plan_cache.h"
#include "tensor/tensor_ops.h"
#include "video/dataset.h"

namespace zeus {
namespace {

video::DatasetProfile SmallProfile() {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 12;
  profile.frames_per_video = 200;
  return profile;
}

core::QueryPlanner::Options FastPlannerOptions() {
  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 4;
  opts.profile.max_windows_per_config = 60;
  opts.trainer.episodes = 3;
  opts.trainer.min_buffer = 32;
  opts.trainer.agent.batch_size = 32;
  opts.max_rl_configs = 4;
  return opts;
}

TEST(ThreadPoolTest, RunsAllTasks) {
  common::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  common::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(50);
  common::ParallelFor(&pool, 50, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  int sum = 0;
  common::ParallelFor(nullptr, 10, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(FeatureCachePrecomputeTest, ParallelMatchesSerial) {
  common::Rng rng(3);
  apfg::Apfg apfg(apfg::ApfgTrainOptions{}, true, &rng);
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 71);
  std::vector<const video::Video*> vids;
  for (size_t i = 0; i < 3; ++i) vids.push_back(&ds.video(i));
  video::DecodeSpec spec{15, 4, 2};

  apfg::FeatureCache serial(&apfg), parallel(&apfg);
  for (const video::Video* v : vids) serial.Precompute(*v, spec, 16);
  common::ThreadPool pool(2);
  parallel.PrecomputeParallel(vids, spec, 16, &pool);
  EXPECT_EQ(serial.size(), parallel.size());
  // Spot-check one entry for identical outputs.
  const auto a = serial.Get(*vids[0], 16, spec);
  const auto b = parallel.Get(*vids[0], 16, spec);
  EXPECT_LT(tensor::MaxAbsDiff(a->feature, b->feature), 1e-6f);
}

TEST(PlanIoTest, SaveLoadRoundTripExecutesIdentically) {
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 72);
  auto opts = FastPlannerOptions();
  core::QueryPlanner planner(&ds, opts);
  auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
  ASSERT_TRUE(plan.ok());

  std::string prefix = testing::TempDir() + "/zeus_plan";
  ASSERT_TRUE(core::PlanIo::Save(prefix, plan.value()).ok());

  auto loaded = core::PlanIo::Load(prefix, video::DatasetFamily::kBdd100kLike,
                                   opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().targets, plan.value().targets);
  EXPECT_DOUBLE_EQ(loaded.value().accuracy_target,
                   plan.value().accuracy_target);
  EXPECT_EQ(loaded.value().rl_space.size(), plan.value().rl_space.size());

  // The reloaded plan must reproduce the original executor's output
  // bit-for-bit (same weights, same thresholds, greedy policy).
  auto test = planner.SplitVideos(ds.test_indices());
  core::QueryExecutor original(&plan.value());
  core::QueryExecutor restored(&loaded.value());
  auto run_a = original.Localize(test);
  auto run_b = restored.Localize(test);
  ASSERT_EQ(run_a.masks.size(), run_b.masks.size());
  for (size_t i = 0; i < run_a.masks.size(); ++i) {
    EXPECT_EQ(run_a.masks[i], run_b.masks[i]) << "video " << i;
  }
  EXPECT_EQ(run_a.invocations, run_b.invocations);
}

TEST(PlanIoTest, LoadRejectsMissingFiles) {
  auto r = core::PlanIo::Load(testing::TempDir() + "/no_such_plan",
                              video::DatasetFamily::kBdd100kLike,
                              FastPlannerOptions());
  EXPECT_FALSE(r.ok());
}

TEST(PlanIoTest, CorruptCheckpointIsRejected) {
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 74);
  auto opts = FastPlannerOptions();
  core::QueryPlanner planner(&ds, opts);
  auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
  ASSERT_TRUE(plan.ok());
  std::string prefix = testing::TempDir() + "/zeus_plan_corrupt";
  ASSERT_TRUE(core::PlanIo::Save(prefix, plan.value()).ok());

  // Truncate the DQN weight file: load must fail, not return garbage.
  {
    std::ofstream trunc(prefix + ".dqn",
                        std::ios::binary | std::ios::trunc);
    trunc << "zz";
  }
  auto loaded = core::PlanIo::Load(prefix, video::DatasetFamily::kBdd100kLike,
                                   opts);
  EXPECT_FALSE(loaded.ok());
}

TEST(PlanIoTest, SaveRejectsUntrainedPlan) {
  core::QueryPlan plan;
  EXPECT_FALSE(core::PlanIo::Save(testing::TempDir() + "/p", plan).ok());
}

// ---- Manifest hardening ----------------------------------------------------
//
// PlanCache trusts PlanIo to reject any damaged checkpoint instead of
// serving a half-initialized plan, so every corruption class must fail
// loudly: truncation, bit flips (crc), unparsable rows, out-of-range ids,
// and unsupported format versions.

// Reads a saved manifest and returns its payload (the lines between the
// magic line and the crc trailer, newline-terminated).
std::string ReadPayload(const std::string& meta_path) {
  std::ifstream f(meta_path);
  std::string line, payload;
  EXPECT_TRUE(std::getline(f, line));  // magic
  while (std::getline(f, line)) {
    if (common::StartsWith(line, "crc32 ")) break;
    payload += line;
    payload += '\n';
  }
  return payload;
}

// Writes a manifest with a *valid* trailer over `payload`, so parsing-level
// defenses are exercised rather than the checksum.
void WriteManifest(const std::string& meta_path, const std::string& payload) {
  std::ofstream f(meta_path, std::ios::trunc);
  f << "zeus-plan\n" << payload;
  f << common::Format(
      "crc32 %08x\n", common::Crc32(0, payload.data(), payload.size()));
}

class PlanIoManifestTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new video::SyntheticDataset(
        video::SyntheticDataset::Generate(SmallProfile(), 75));
    opts_ = new core::QueryPlanner::Options(FastPlannerOptions());
    core::QueryPlanner planner(dataset_, *opts_);
    auto plan =
        planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
    ASSERT_TRUE(plan.ok());
    prefix_ = new std::string(testing::TempDir() + "/zeus_manifest_plan");
    ASSERT_TRUE(core::PlanIo::Save(*prefix_, plan.value()).ok());
    payload_ = new std::string(ReadPayload(*prefix_ + ".meta"));
    ASSERT_FALSE(payload_->empty());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete opts_;
    delete prefix_;
    delete payload_;
    dataset_ = nullptr;
    opts_ = nullptr;
    prefix_ = nullptr;
    payload_ = nullptr;
  }

  // Loads after replacing the manifest payload; the weight files stay
  // intact, so any failure comes from the manifest checks.
  common::Status LoadWith(const std::string& payload) {
    WriteManifest(*prefix_ + ".meta", payload);
    return core::PlanIo::Load(*prefix_, video::DatasetFamily::kBdd100kLike,
                              *opts_)
        .status();
  }

  void TearDown() override {
    // Restore the pristine manifest for the next case.
    WriteManifest(*prefix_ + ".meta", *payload_);
  }

  static video::SyntheticDataset* dataset_;
  static core::QueryPlanner::Options* opts_;
  static std::string* prefix_;
  static std::string* payload_;
};

video::SyntheticDataset* PlanIoManifestTest::dataset_ = nullptr;
core::QueryPlanner::Options* PlanIoManifestTest::opts_ = nullptr;
std::string* PlanIoManifestTest::prefix_ = nullptr;
std::string* PlanIoManifestTest::payload_ = nullptr;

TEST_F(PlanIoManifestTest, PristineManifestLoads) {
  EXPECT_TRUE(LoadWith(*payload_).ok());
}

TEST_F(PlanIoManifestTest, TruncatedManifestIsRejected) {
  // Cut the file mid-way: the crc trailer disappears with the tail.
  std::ofstream f(*prefix_ + ".meta", std::ios::trunc);
  f << "zeus-plan\n" << payload_->substr(0, payload_->size() / 2);
  f.close();
  auto st = core::PlanIo::Load(*prefix_, video::DatasetFamily::kBdd100kLike,
                               *opts_)
                .status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("crc32"), std::string::npos) << st.ToString();
}

TEST_F(PlanIoManifestTest, BitFlipFailsChecksum) {
  std::string flipped = *payload_;
  flipped[flipped.size() / 2] ^= 0x20;
  WriteManifest(*prefix_ + ".meta", *payload_);
  // Write the damaged payload under the ORIGINAL trailer.
  {
    std::ofstream f(*prefix_ + ".meta", std::ios::trunc);
    f << "zeus-plan\n" << flipped;
    f << common::Format("crc32 %08x\n",
                        common::Crc32(0, payload_->data(), payload_->size()));
  }
  auto st = core::PlanIo::Load(*prefix_, video::DatasetFamily::kBdd100kLike,
                               *opts_)
                .status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("crc32 mismatch"), std::string::npos);
}

TEST_F(PlanIoManifestTest, UnparsableConfigRowIsRejected) {
  // Replace the first config-table row (the line after "configs N") with
  // junk; the trailer is recomputed, so the parser must catch it.
  std::istringstream in(*payload_);
  std::ostringstream out;
  std::string line;
  bool corrupt_next = false;
  while (std::getline(in, line)) {
    if (corrupt_next) {
      out << "not a number\n";
      corrupt_next = false;
      continue;
    }
    if (common::StartsWith(line, "configs ")) corrupt_next = true;
    out << line << "\n";
  }
  auto st = LoadWith(out.str());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("config table row"), std::string::npos)
      << st.ToString();
}

TEST_F(PlanIoManifestTest, OutOfRangeRlSpaceIdIsRejected) {
  std::istringstream in(*payload_);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (common::StartsWith(line, "rl_space")) {
      out << "rl_space 0 9999\n";
    } else {
      out << line << "\n";
    }
  }
  auto st = LoadWith(out.str());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("rl_space id out of range"), std::string::npos)
      << st.ToString();
}

TEST_F(PlanIoManifestTest, MissingFormatVersionIsRejected) {
  std::istringstream in(*payload_);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (!common::StartsWith(line, "format_version")) out << line << "\n";
  }
  EXPECT_FALSE(LoadWith(out.str()).ok());
}

TEST_F(PlanIoManifestTest, WrongFormatVersionIsRejected) {
  std::string bumped = *payload_;
  size_t pos = bumped.find("format_version 2");
  ASSERT_NE(pos, std::string::npos);
  bumped.replace(pos, 16, "format_version 9");
  auto st = LoadWith(bumped);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unsupported plan format version"),
            std::string::npos)
      << st.ToString();
}

// ---- Crash-atomic persistence ----------------------------------------------
//
// Checkpoints, manifests and catalog sidecars are written temp-then-rename
// so a crash (or a SIGKILLed shardd, which the cluster failover drill does
// on purpose) can never leave a half-written file under its final name.
// These tests pin both halves of that contract: the writer leaves no
// droppings behind, and the catalog scanner survives whatever droppings or
// damage it finds anyway.

TEST(AtomicWriteFileTest, WritesReplacesAndLeavesNoTemp) {
  namespace fs = std::filesystem;
  const std::string dir =
      testing::TempDir() + "/zeus_atomic_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/target.txt";

  ASSERT_TRUE(common::AtomicWriteFile(path, "first").ok());
  ASSERT_TRUE(common::AtomicWriteFile(path, "second").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");

  // The rename consumed the temp file: the final name is the only entry.
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename().string(), "target.txt");
  }
  EXPECT_EQ(entries, 1);
  fs::remove_all(dir);
}

TEST(AtomicWriteFileTest, FailsCleanlyOnMissingDirectory) {
  const std::string path = testing::TempDir() + "/zeus_no_such_dir_" +
                           std::to_string(::getpid()) + "/x/y/target";
  EXPECT_FALSE(common::AtomicWriteFile(path, "data").ok());
}

TEST(PlanCacheCatalogTest, WarmUpSurvivesTruncatedAndGarbageSidecars) {
  namespace fs = std::filesystem;
  const std::string dir =
      testing::TempDir() + "/zeus_catalog_" + std::to_string(::getpid());
  fs::remove_all(dir);

  // Train and persist one real plan through the cache.
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 76);
  engine::PlanCache::Options copts;
  copts.persist_dir = dir;
  const std::string key = "bdd|cross-right|0.80";
  {
    engine::PlanCache writer(copts, FastPlannerOptions());
    auto r = writer.GetOrPlan(key, &ds, {video::ActionClass::kCrossRight},
                              0.8);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(writer.planner_runs(), 1);
  }

  // A normal save leaves no atomic-write droppings behind.
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().string().find(".tmp"), std::string::npos)
        << "temp file leaked: " << e.path();
  }

  // Litter the catalog dir with every damage class the scanner must
  // shrug off: a sidecar truncated mid-write the non-atomic way (magic
  // line only), pure garbage, an empty file, a well-formed sidecar whose
  // checkpoint files are missing, and a stray temp file from a crashed
  // writer (its extension is not `.key`, so the scan skips it outright).
  { std::ofstream f(dir + "/truncated.key"); f << "zeus-plan-key\n"; }
  { std::ofstream f(dir + "/garbage.key"); f << "\x7f\x03!!not a catalog"; }
  { std::ofstream f(dir + "/empty.key"); }
  {
    std::ofstream f(dir + "/orphan.key");
    f << "zeus-plan-key\nsome|other|key\nfamily 0\n";
  }
  { std::ofstream f(dir + "/plan.key.tmp.12345"); f << "zeus-plan-key\n"; }

  // A fresh cache over the same dir warms exactly the one real plan —
  // nothing crashes, nothing half-loads, nothing trains.
  engine::PlanCache reader(copts, FastPlannerOptions());
  EXPECT_EQ(reader.WarmUp(), 1u);
  EXPECT_EQ(reader.disk_loads(), 1);
  EXPECT_EQ(reader.planner_runs(), 0);
  EXPECT_NE(reader.Peek(key), nullptr);
  EXPECT_EQ(reader.Peek("some|other|key"), nullptr);

  fs::remove_all(dir);
}

TEST_F(PlanIoManifestTest, LegacyV1ManifestIsRejected) {
  {
    std::ofstream f(*prefix_ + ".meta", std::ios::trunc);
    f << "zeus-plan-v1\n" << *payload_;
  }
  auto st = core::PlanIo::Load(*prefix_, video::DatasetFamily::kBdd100kLike,
                               *opts_)
                .status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unsupported plan format v1"),
            std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace zeus
