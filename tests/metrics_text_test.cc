// Pins the Prometheus text exposition of GroupStats (cluster/metrics_text):
// naming conventions, HELP/TYPE preambles, cumulative histogram buckets,
// and the per-shard label breakdown. The format is an external contract
// (scrapers parse it), so these tests are deliberately literal.

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/metrics_text.h"

namespace zeus {
namespace {

engine::GroupStats MakeStats() {
  engine::GroupStats group;
  group.num_shards = 2;

  engine::ShardStats s0;
  s0.shard = 0;
  s0.submitted = 10;
  s0.completed = 7;
  s0.failed = 1;
  s0.queue_depth = 2;
  s0.planner_runs = 3;
  s0.exec.count = 4;
  s0.exec.sum_seconds = 1.5;
  s0.exec.buckets[20] = 3;
  s0.exec.buckets[21] = 1;

  s0.appends = 4;
  s0.appended_frames = 256;
  s0.subscribes = 2;
  s0.unsubscribes = 1;
  s0.stream_results = 9;
  s0.stream_dropped = 1;
  s0.feature_hits = 30;
  s0.feature_misses = 6;
  s0.feature_evictions = 2;

  engine::ShardStats s1;
  s1.shard = 1;
  s1.submitted = 5;
  s1.completed = 5;
  s1.queue_depth = 1;
  s1.appends = 1;
  s1.appended_frames = 64;
  s1.stream_results = 3;

  group.Absorb(s0);
  group.Absorb(s1);
  return group;
}

cluster::ClusterHealth MakeHealth() {
  cluster::ClusterHealth health;
  health.failovers = 1;
  health.rehomed_datasets = 2;
  health.dead_shards = 1;
  health.replication = 2;
  health.replicas_behind = 1;
  health.read_failovers = 3;
  health.certain_answers = 40;
  health.degraded_answers = 2;
  health.plan_resyncs = 5;
  cluster::ClusterHealth::DatasetPlacement placement;
  placement.dataset = "bdd";
  placement.primary = 1;
  placement.replicas = 2;
  placement.committed_epoch = 7;
  health.placements.push_back(placement);
  return health;
}

TEST(MetricsTextTest, EmitsAggregateCountersWithPreambles) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("# HELP zeus_queries_submitted_total "),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zeus_queries_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_queries_submitted_total 15\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_queries_completed_total 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_queries_failed_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_planner_runs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_shards_alive 2\n"), std::string::npos);
}

TEST(MetricsTextTest, EmitsClusterHealth) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("zeus_cluster_failovers_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_rehomed_datasets_total 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_dead_shards 1\n"), std::string::npos);
}

TEST(MetricsTextTest, EmitsReplicationAndCertainAnswerContract) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("zeus_certain_answers_total 40\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_degraded_answers_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_read_failovers_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_plan_resyncs_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_replication_factor 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_replicas_behind 1\n"), std::string::npos);
  // Per-dataset placement gauges carry the dataset label — this is what CI
  // parses to find the primary worth killing in the failover drill.
  EXPECT_NE(text.find("zeus_dataset_primary_shard{dataset=\"bdd\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_dataset_live_replicas{dataset=\"bdd\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_dataset_committed_epoch{dataset=\"bdd\"} 7\n"),
            std::string::npos);
}

TEST(MetricsTextTest, EmitsLiveStreamCounters) {
  // Stream counters fold across shards like everything else: shard 0's
  // 4 appends / 256 frames plus shard 1's 1 / 64.
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("zeus_appends_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_appended_frames_total 320\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_subscriptions_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_unsubscribes_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_stream_results_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_stream_dropped_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_feature_cache_hits_total 30\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_feature_cache_misses_total 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_feature_cache_evictions_total 2\n"),
            std::string::npos);
}

TEST(MetricsTextTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  // Bucket 20 holds 3 samples, bucket 21 one more: the le-series must be
  // cumulative (3 then 4) and +Inf must equal the count.
  EXPECT_NE(text.find("zeus_exec_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_exec_seconds_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_exec_seconds_sum 1.5\n"), std::string::npos);

  // Extract the cumulative series and verify monotonicity ending at 4.
  std::istringstream lines(text);
  std::string line;
  long previous = 0;
  int buckets_seen = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("zeus_exec_seconds_bucket{le=", 0) != 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const long value = std::stol(line.substr(space + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
    ++buckets_seen;
  }
  EXPECT_EQ(buckets_seen,
            static_cast<int>(engine::HistogramStats::kNumBuckets) + 1);
  EXPECT_EQ(previous, 4);
}

TEST(MetricsTextTest, PerShardBreakdownUsesShardLabels) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("zeus_shard_completed_total{shard=\"0\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_shard_completed_total{shard=\"1\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_shard_queue_depth{shard=\"0\"} 2\n"),
            std::string::npos);
}

TEST(MetricsTextTest, EveryLineIsCommentOrSample) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // "<name>[{labels}] <value>": exactly one space separating the value.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    const std::string name = line.substr(0, space);
    EXPECT_EQ(name.rfind("zeus_", 0), 0u) << line;
    EXPECT_FALSE(line.substr(space + 1).empty()) << line;
  }
}

// docs/METRICS.md documents every family in a table whose rows start with
// "| `zeus_...` | <type> |". This test holds the doc and the live exposition
// to each other, both directions, so neither can drift: a metric added to
// the code without a doc row fails, and a doc row for a removed metric
// fails. ZEUS_DOCS_DIR is injected by CMake.
#ifdef ZEUS_DOCS_DIR
TEST(MetricsTextTest, MetricsDocMatchesLiveExposition) {
  std::ifstream doc(std::string(ZEUS_DOCS_DIR) + "/METRICS.md");
  ASSERT_TRUE(doc.good()) << "docs/METRICS.md is missing";

  auto trim = [](std::string s) {
    const size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string();
    return s.substr(b, s.find_last_not_of(" \t") - b + 1);
  };

  std::map<std::string, std::string> documented;  // family -> type
  std::string line;
  while (std::getline(doc, line)) {
    if (line.rfind("| `zeus_", 0) != 0) continue;
    const size_t name_start = line.find('`') + 1;
    const size_t name_end = line.find('`', name_start);
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(name_start, name_end - name_start);
    const size_t bar = line.find('|', name_end);
    ASSERT_NE(bar, std::string::npos) << line;
    const size_t next = line.find('|', bar + 1);
    ASSERT_NE(next, std::string::npos) << line;
    documented[name] = trim(line.substr(bar + 1, next - bar - 1));
  }
  ASSERT_FALSE(documented.empty()) << "no metric rows found in METRICS.md";

  std::map<std::string, std::string> live;  // from "# TYPE <name> <type>"
  std::istringstream text(cluster::PrometheusText(MakeStats(), MakeHealth()));
  while (std::getline(text, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    std::istringstream fields(line.substr(7));
    std::string name, type;
    ASSERT_TRUE(fields >> name >> type) << line;
    live[name] = type;
  }

  for (const auto& [name, type] : live) {
    const auto it = documented.find(name);
    EXPECT_TRUE(it != documented.end())
        << "metric " << name << " is emitted but has no row in METRICS.md";
    if (it != documented.end()) {
      EXPECT_EQ(it->second, type) << "METRICS.md documents " << name
                                  << " with the wrong type";
    }
  }
  for (const auto& [name, type] : documented) {
    EXPECT_EQ(live.count(name), 1u)
        << "METRICS.md documents " << name << " (" << type
        << ") but the exposition does not emit it";
  }
}
#endif  // ZEUS_DOCS_DIR

}  // namespace
}  // namespace zeus
