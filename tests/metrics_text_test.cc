// Pins the Prometheus text exposition of GroupStats (cluster/metrics_text):
// naming conventions, HELP/TYPE preambles, cumulative histogram buckets,
// and the per-shard label breakdown. The format is an external contract
// (scrapers parse it), so these tests are deliberately literal.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/metrics_text.h"

namespace zeus {
namespace {

engine::GroupStats MakeStats() {
  engine::GroupStats group;
  group.num_shards = 2;

  engine::ShardStats s0;
  s0.shard = 0;
  s0.submitted = 10;
  s0.completed = 7;
  s0.failed = 1;
  s0.queue_depth = 2;
  s0.planner_runs = 3;
  s0.exec.count = 4;
  s0.exec.sum_seconds = 1.5;
  s0.exec.buckets[20] = 3;
  s0.exec.buckets[21] = 1;

  engine::ShardStats s1;
  s1.shard = 1;
  s1.submitted = 5;
  s1.completed = 5;
  s1.queue_depth = 1;

  group.Absorb(s0);
  group.Absorb(s1);
  return group;
}

cluster::ClusterHealth MakeHealth() {
  cluster::ClusterHealth health;
  health.failovers = 1;
  health.rehomed_datasets = 2;
  health.dead_shards = 1;
  return health;
}

TEST(MetricsTextTest, EmitsAggregateCountersWithPreambles) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("# HELP zeus_queries_submitted_total "),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zeus_queries_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_queries_submitted_total 15\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_queries_completed_total 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_queries_failed_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_planner_runs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_shards_alive 2\n"), std::string::npos);
}

TEST(MetricsTextTest, EmitsClusterHealth) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("zeus_cluster_failovers_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_rehomed_datasets_total 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_cluster_dead_shards 1\n"), std::string::npos);
}

TEST(MetricsTextTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  // Bucket 20 holds 3 samples, bucket 21 one more: the le-series must be
  // cumulative (3 then 4) and +Inf must equal the count.
  EXPECT_NE(text.find("zeus_exec_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_exec_seconds_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("zeus_exec_seconds_sum 1.5\n"), std::string::npos);

  // Extract the cumulative series and verify monotonicity ending at 4.
  std::istringstream lines(text);
  std::string line;
  long previous = 0;
  int buckets_seen = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("zeus_exec_seconds_bucket{le=", 0) != 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const long value = std::stol(line.substr(space + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
    ++buckets_seen;
  }
  EXPECT_EQ(buckets_seen,
            static_cast<int>(engine::HistogramStats::kNumBuckets) + 1);
  EXPECT_EQ(previous, 4);
}

TEST(MetricsTextTest, PerShardBreakdownUsesShardLabels) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  EXPECT_NE(text.find("zeus_shard_completed_total{shard=\"0\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_shard_completed_total{shard=\"1\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("zeus_shard_queue_depth{shard=\"0\"} 2\n"),
            std::string::npos);
}

TEST(MetricsTextTest, EveryLineIsCommentOrSample) {
  const std::string text = cluster::PrometheusText(MakeStats(), MakeHealth());
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // "<name>[{labels}] <value>": exactly one space separating the value.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    const std::string name = line.substr(0, space);
    EXPECT_EQ(name.rfind("zeus_", 0), 0u) << line;
    EXPECT_FALSE(line.substr(space + 1).empty()) << line;
  }
}

}  // namespace
}  // namespace zeus
