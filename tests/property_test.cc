// Parameterized property sweeps across module boundaries: decoder
// invariants over the full knob range, metrics algebra, storage round-trips
// over the encoding x shape matrix, and configuration-space invariants.

#include <cctype>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/metrics.h"
#include "storage/video_file.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace zeus {
namespace {

video::Video RandomVideo(int frames, int side, uint64_t seed) {
  common::Rng rng(seed);
  video::Video v(frames, side, side);
  for (int f = 0; f < frames; ++f) {
    float* px = v.FrameData(f);
    for (int i = 0; i < side * side; ++i) px[i] = rng.NextFloat();
  }
  return v;
}

// ---------------------------------------------------------------------------
// Decoder properties over the knob grid.

class DecoderPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DecoderPropertyTest, ShapeCoverageAndStandardization) {
  const auto [res, len, rate] = GetParam();
  video::DecodeSpec spec{res, len, rate};
  video::Video v = RandomVideo(200, 30, 11);

  tensor::Tensor t = video::SegmentDecoder::Decode(v, 17, spec);
  // Shape is always {1, L, r, r} regardless of the video's native size.
  EXPECT_EQ(t.shape(), (std::vector<int>{1, len, res, res}));
  // Covered source frames = L * rate.
  EXPECT_EQ(video::SegmentDecoder::CoveredFrames(spec), len * rate);
  // Standardized: mean ~0, variance <= ~1 (epsilon shaves a little).
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum_sq += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 1e-3);
  EXPECT_LE(sum_sq / n, 1.05);
  // Deterministic: decoding twice gives identical bytes.
  tensor::Tensor u = video::SegmentDecoder::Decode(v, 17, spec);
  for (size_t i = 0; i < t.size(); ++i) ASSERT_EQ(t[i], u[i]);
}

INSTANTIATE_TEST_SUITE_P(
    KnobGrid, DecoderPropertyTest,
    testing::Combine(testing::Values(8, 15, 24, 30),   // resolution px
                     testing::Values(2, 8, 16),        // segment length
                     testing::Values(1, 4, 8)),        // sampling rate
    [](const testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "l" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Metrics algebra.

TEST(MetricsPropertyTest, OracleMaskScoresPerfect) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 2;
  profile.frames_per_video = 200;
  auto ds = video::SyntheticDataset::Generate(profile, 31);
  std::vector<video::ActionClass> targets = {profile.classes[0]};
  for (size_t i = 0; i < ds.num_videos(); ++i) {
    const video::Video& v = ds.video(i);
    core::FrameMask oracle(static_cast<size_t>(v.num_frames()), 0);
    bool any = false;
    for (int f = 0; f < v.num_frames(); ++f) {
      oracle[static_cast<size_t>(f)] = v.IsActionAny(f, targets) ? 1 : 0;
      any |= oracle[static_cast<size_t>(f)] != 0;
    }
    if (!any) continue;  // F1 undefined without positives
    auto m = core::EvaluateVideo(v, targets, oracle, core::EvalOptions{});
    EXPECT_DOUBLE_EQ(m.f1, 1.0) << "video " << i;
  }
}

TEST(MetricsPropertyTest, EmptyMaskHasZeroRecall) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 1;
  profile.frames_per_video = 300;
  auto ds = video::SyntheticDataset::Generate(profile, 32);
  const video::Video& v = ds.video(0);
  std::vector<video::ActionClass> targets(profile.classes.begin(),
                                          profile.classes.end());
  core::FrameMask empty(static_cast<size_t>(v.num_frames()), 0);
  auto m = core::EvaluateVideo(v, targets, empty, core::EvalOptions{});
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_EQ(m.tp, 0);
  EXPECT_EQ(m.fp, 0);
}

TEST(MetricsPropertyTest, FullMaskHasFullRecall) {
  video::Video v(300, 4, 4);
  for (int f = 40; f < 120; ++f) v.SetLabel(f, video::ActionClass::kLeftTurn);
  core::FrameMask full(static_cast<size_t>(v.num_frames()), 1);
  auto m = core::EvaluateVideo(v, {video::ActionClass::kLeftTurn}, full,
                               core::EvalOptions{});
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_EQ(m.fn, 0);
  // And precision reflects the 80/300 positive share at 16-frame tiling.
  EXPECT_GT(m.fp, 0);
}

TEST(MetricsPropertyTest, MaskToInstancesRoundTripsExtraction) {
  // Instances extracted from a video, painted into a mask, and re-extracted
  // must match exactly (for a single-class video).
  video::Video v(100, 2, 2);
  for (int f = 10; f < 25; ++f) v.SetLabel(f, video::ActionClass::kLeftTurn);
  for (int f = 60; f < 61; ++f) v.SetLabel(f, video::ActionClass::kLeftTurn);
  for (int f = 99; f < 100; ++f) v.SetLabel(f, video::ActionClass::kLeftTurn);
  auto instances = video::ExtractInstances(v);
  core::FrameMask mask(100, 0);
  for (const auto& inst : instances) {
    for (int f = inst.start; f < inst.end; ++f) {
      mask[static_cast<size_t>(f)] = 1;
    }
  }
  auto round = core::MaskToInstances(mask);
  ASSERT_EQ(round.size(), instances.size());
  for (size_t i = 0; i < round.size(); ++i) {
    EXPECT_EQ(round[i].start, instances[i].start);
    EXPECT_EQ(round[i].end, instances[i].end);
  }
}

TEST(MetricsPropertyTest, WindowAccuracyEmptyWindowIsPerfect) {
  video::Video v(50, 2, 2);
  core::FrameMask mask(50, 0);
  EXPECT_DOUBLE_EQ(
      core::WindowAccuracy(v, {video::ActionClass::kLeftTurn}, mask, 0, 50),
      1.0);
}

// ---------------------------------------------------------------------------
// Storage round-trip matrix: encoding x shape.

class VideoFileRoundTripTest
    : public testing::TestWithParam<
          std::tuple<storage::PixelEncoding, int, int>> {};

TEST_P(VideoFileRoundTripTest, LabelsExactPixelsBounded) {
  const auto [encoding, frames, side] = GetParam();
  video::Video v = RandomVideo(frames, side, 47);
  for (int f = frames / 3; f < 2 * frames / 3; ++f) {
    v.SetLabel(f, video::ActionClass::kPoleVault);
  }
  v.set_id(4700 + frames * 10 + side);

  const std::string path = testing::TempDir() + "/prop_roundtrip.zvf";
  ASSERT_TRUE(storage::VideoFile::Save(path, v, encoding).ok());
  auto loaded = storage::VideoFile::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const video::Video& w = loaded.value();
  EXPECT_EQ(w.id(), v.id());
  ASSERT_EQ(w.labels(), v.labels());
  const float bound = encoding == storage::PixelEncoding::kFloat32
                          ? 0.0f
                          : 1.0f / 255.0f + 1e-5f;
  for (int f = 0; f < frames; ++f) {
    const float* a = v.FrameData(f);
    const float* b = w.FrameData(f);
    for (int i = 0; i < side * side; ++i) ASSERT_NEAR(a[i], b[i], bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EncodingShapes, VideoFileRoundTripTest,
    testing::Combine(testing::Values(storage::PixelEncoding::kFloat32,
                                     storage::PixelEncoding::kUint8),
                     testing::Values(1, 16, 60),   // frames
                     testing::Values(4, 24)),      // side
    [](const testing::TestParamInfo<
        std::tuple<storage::PixelEncoding, int, int>>& info) {
      return std::string(std::get<0>(info.param) ==
                                 storage::PixelEncoding::kFloat32
                             ? "f32"
                             : "u8") +
             "_f" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Configuration space invariants over every dataset family.

class ConfigSpacePropertyTest
    : public testing::TestWithParam<video::DatasetFamily> {};

TEST_P(ConfigSpacePropertyTest, AlphasNormalizedAndExtremesConsistent) {
  auto space = core::ConfigurationSpace::ForFamily(GetParam());
  space.AttachCosts(core::CostModel{});
  double alpha_sum = 0.0;
  for (const auto& c : space.configs()) {
    EXPECT_GT(c.gpu_seconds_per_invocation, 0.0);
    EXPECT_GT(c.throughput_fps, 0.0);
    alpha_sum += c.alpha;
  }
  EXPECT_NEAR(alpha_sum, 1.0, 1e-9);
  // Slowest has the max per-invocation cost, fastest the max throughput.
  const auto& slowest = space.config(space.SlowestId());
  const auto& fastest = space.config(space.FastestId());
  for (const auto& c : space.configs()) {
    EXPECT_LE(c.gpu_seconds_per_invocation,
              slowest.gpu_seconds_per_invocation + 1e-12);
    EXPECT_LE(c.throughput_fps, fastest.throughput_fps + 1e-9);
  }
}

TEST_P(ConfigSpacePropertyTest, FrozenKnobShrinksSpace) {
  auto space = core::ConfigurationSpace::ForFamily(GetParam());
  for (auto knob : {core::Knob::kResolution, core::Knob::kSegmentLength,
                    core::Knob::kSamplingRate}) {
    auto frozen = space.WithFrozenKnob(knob);
    EXPECT_LT(frozen.size(), space.size());
    EXPECT_GT(frozen.size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ConfigSpacePropertyTest,
                         testing::Values(video::DatasetFamily::kBdd100kLike,
                                         video::DatasetFamily::kThumos14Like,
                                         video::DatasetFamily::kActivityNetLike,
                                         video::DatasetFamily::kCityscapesLike,
                                         video::DatasetFamily::kKittiLike),
                         [](const testing::TestParamInfo<video::DatasetFamily>&
                                info) {
                           // gtest names must be alphanumeric.
                           std::string name = video::DatasetFamilyName(info.param);
                           std::string clean;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               clean += c;
                             }
                           }
                           return clean;
                         });

// ---------------------------------------------------------------------------
// Dataset generation respects its profile across seeds.

class DatasetSeedTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DatasetSeedTest, StatisticsTrackProfileTargets) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 10;
  profile.frames_per_video = 400;
  auto ds = video::SyntheticDataset::Generate(profile, GetParam());
  auto stats = ds.ComputeStatistics();
  EXPECT_EQ(stats.total_frames, 10L * 400);
  // Realized density within a loose band of the target.
  EXPECT_GT(stats.percent_action_frames, 100.0 * profile.action_fraction * 0.4);
  EXPECT_LT(stats.percent_action_frames, 100.0 * profile.action_fraction * 3.0);
  EXPECT_GE(stats.min_action_length, profile.min_action_length);
  EXPECT_LE(stats.max_action_length, profile.max_action_length);
  // Splits partition the videos.
  EXPECT_EQ(ds.train_indices().size() + ds.val_indices().size() +
                ds.test_indices().size(),
            ds.num_videos());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetSeedTest,
                         testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace zeus
