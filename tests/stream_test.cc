// Live-stream serving drill (in-process): append-mode datasets flowing
// through SubscribeQuery tickets. The acceptance bar: a subscriber's
// incremental result over an appended window is bit-identical to a cold
// one-shot query over the same prefix, with zero planner runs after the
// first window and FeatureCache misses only for segments past the previous
// high-water mark (the clamp-aware keys in apfg/feature_cache.h; the
// key-level proof lives in apfg_test.cc — here the counters close the loop
// end to end through the engine).

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "apfg/feature_cache.h"
#include "engine/engine_group.h"
#include "engine/query_engine.h"
#include "video/dataset.h"

namespace zeus {
namespace {

namespace fs = std::filesystem;

video::DatasetProfile StreamProfile() {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 12;
  profile.frames_per_video = 160;
  return profile;
}

core::QueryPlanner::Options FastPlannerOptions() {
  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 4;
  opts.profile.max_windows_per_config = 60;
  opts.trainer.episodes = 3;
  opts.trainer.min_buffer = 32;
  opts.trainer.agent.batch_size = 32;
  opts.max_rl_configs = 4;
  return opts;
}

constexpr uint64_t kDatasetSeed = 77;

video::SyntheticDataset MakeDataset() {
  return video::SyntheticDataset::Generate(StreamProfile(), kDatasetSeed);
}

core::ActionQuery CrossRightQuery() {
  core::ActionQuery q;
  q.action_classes = {video::ActionClass::kCrossRight};
  q.accuracy_target = 0.8;
  return q;
}

void ExpectBitIdentical(const engine::QueryResult& a,
                        const engine::QueryResult& b) {
  EXPECT_TRUE(engine::SameSegments(a, b))
      << a.segments.size() << " vs " << b.segments.size() << " segments";
  EXPECT_EQ(a.metrics.tp, b.metrics.tp);
  EXPECT_EQ(a.metrics.fp, b.metrics.fp);
  EXPECT_EQ(a.metrics.fn, b.metrics.fn);
  EXPECT_EQ(a.metrics.tn, b.metrics.tn);
  EXPECT_EQ(a.achieved_confidence, b.achieved_confidence);
  EXPECT_EQ(a.window_end, b.window_end);
  EXPECT_EQ(a.frame_epoch, b.frame_epoch);
}

constexpr int kWaitMs = 120 * 1000;  // covers the one planner run

// One persist dir for the whole suite: the first test's single planner run
// feeds every later engine (and the EngineGroup) through disk, proving
// subscriptions never replan.
class StreamServingTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    persist_dir_ = new std::string(testing::TempDir() + "/zeus_stream_plans");
    fs::remove_all(*persist_dir_);
    fs::create_directories(*persist_dir_);
  }
  static void TearDownTestSuite() {
    delete persist_dir_;
    persist_dir_ = nullptr;
  }

  static engine::QueryEngine::Options EngineOptions() {
    engine::QueryEngine::Options opts;
    opts.num_workers = 2;
    opts.planner = FastPlannerOptions();
    opts.cache.persist_dir = *persist_dir_;
    return opts;
  }

  static std::string* persist_dir_;
};

std::string* StreamServingTest::persist_dir_ = nullptr;

// The acceptance drill: subscribe, append, and compare the subscriber's
// incremental answer against a cold one-shot over the same grown prefix.
TEST_F(StreamServingTest, IncrementalResultBitIdenticalToColdQuery) {
  engine::QueryEngine engine(EngineOptions());
  ASSERT_TRUE(engine.RegisterDataset("bdd", MakeDataset()).ok());
  const long base_len = engine.ShareDataset("bdd")->stream_length();
  ASSERT_GT(base_len, 0);

  engine::SubscribeOptions sopts;  // window_frames = 0: full prefix
  auto sub = engine.Subscribe("bdd", CrossRightQuery(), sopts);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  // Initial window: the one planner run of the whole suite.
  auto first = sub.value().Next(0, kWaitMs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().seq, 1u);
  EXPECT_EQ(first.value().result.window_begin, 0);
  EXPECT_EQ(first.value().result.window_end, base_len);
  EXPECT_EQ(first.value().result.frame_epoch, 0u);
  const long planner_runs_after_first = engine.plan_cache().planner_runs();
  EXPECT_EQ(planner_runs_after_first, 1);

  // Feature-cache state at the pre-append high-water mark.
  auto plan = engine.CachedPlan("bdd", CrossRightQuery());
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(plan->cache, nullptr);
  const uint64_t misses_initial = plan->cache->misses();
  ASSERT_GT(misses_initial, 0u);

  // Append one stream block; the subscription re-executes over the grown
  // prefix.
  auto appended = engine.AppendFrames(
      "bdd", video::SyntheticDataset::kStreamBlockFrames);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended.value().frame_epoch, 1u);
  EXPECT_EQ(appended.value().stream_length,
            base_len + video::SyntheticDataset::kStreamBlockFrames);
  EXPECT_EQ(appended.value().appended,
            static_cast<long>(video::SyntheticDataset::kStreamBlockFrames));

  auto second = sub.value().Next(first.value().seq, kWaitMs);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().seq, 2u);
  EXPECT_EQ(second.value().result.window_begin, 0);
  EXPECT_EQ(second.value().result.window_end, appended.value().stream_length);
  EXPECT_EQ(second.value().result.frame_epoch, 1u);
  // Plan reuse: the appended window replanned nothing.
  EXPECT_EQ(engine.plan_cache().planner_runs(), planner_runs_after_first);
  EXPECT_EQ(second.value().result.plan_seconds, 0.0);

  // Window-aware reuse: the incremental window re-extracted features only
  // past the previous high-water mark — strictly fewer misses than the
  // initial full extraction, and plenty of hits from interior segments.
  const uint64_t misses_incremental = plan->cache->misses() - misses_initial;
  EXPECT_GT(misses_incremental, 0u);
  EXPECT_LT(misses_incremental, misses_initial);
  EXPECT_GT(plan->cache->hits(), 0u);

  // Cold one-shot over the exact same grown prefix: bit-identical to the
  // subscriber's incremental answer, with zero additional feature misses
  // (every segment the traversal touches is already cached).
  const uint64_t misses_before_cold = plan->cache->misses();
  auto cold = engine.Execute("bdd", CrossRightQuery());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ExpectBitIdentical(second.value().result, cold.value());
  EXPECT_EQ(plan->cache->misses(), misses_before_cold);
  EXPECT_EQ(engine.plan_cache().planner_runs(), planner_runs_after_first);

  // Stream counters surfaced through Stats().
  auto stats = engine.Stats();
  EXPECT_EQ(stats.appends, 1);
  EXPECT_EQ(stats.appended_frames,
            static_cast<long>(video::SyntheticDataset::kStreamBlockFrames));
  EXPECT_EQ(stats.subscribes, 1);
  EXPECT_EQ(stats.stream_results, 2);
  EXPECT_GT(stats.feature_misses, 0);
  EXPECT_GT(stats.feature_hits, 0);

  sub.value().Cancel();
  auto after_cancel = sub.value().Next(second.value().seq, 100);
  EXPECT_FALSE(after_cancel.ok());
  EXPECT_EQ(after_cancel.status().code(), common::StatusCode::kCancelled);
  EXPECT_EQ(engine.subscriptions(), 0u);
}

// Sliding windows restrict each incremental answer to the stream tail; the
// plan comes from disk (trained by the drill above), so even a cold engine
// serves every window without a planner run.
TEST_F(StreamServingTest, SlidingWindowCoversOnlyTheTail) {
  engine::QueryEngine engine(EngineOptions());
  ASSERT_TRUE(engine.RegisterDataset("bdd", MakeDataset()).ok());
  const long base_len = engine.ShareDataset("bdd")->stream_length();

  engine::SubscribeOptions sopts;
  sopts.window_frames = 96;
  auto sub = engine.Subscribe("bdd", CrossRightQuery(), sopts);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  auto first = sub.value().Next(0, kWaitMs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().result.window_begin, base_len - 96);
  EXPECT_EQ(first.value().result.window_end, base_len);
  // Disk-loaded plan: no planner run anywhere in this engine.
  EXPECT_EQ(engine.plan_cache().planner_runs(), 0);
  EXPECT_GE(engine.plan_cache().disk_loads(), 1);

  auto appended = engine.AppendFrames("bdd", 40);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  auto second = sub.value().Next(first.value().seq, kWaitMs);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const long new_len = base_len + 40;
  EXPECT_EQ(second.value().result.window_begin, new_len - 96);
  EXPECT_EQ(second.value().result.window_end, new_len);
  // Every reported segment intersects the window.
  for (const auto& seg : second.value().result.segments) {
    EXPECT_GT(seg.end, new_len - 96);
  }
  EXPECT_EQ(engine.plan_cache().planner_runs(), 0);
  sub.value().Cancel();
}

// Append correctness without any planner: idempotent replay, epoch
// monotonicity, and the streamability guard.
TEST_F(StreamServingTest, AppendsAreIdempotentAndGuarded) {
  engine::QueryEngine engine;
  ASSERT_TRUE(engine.RegisterDataset("bdd", MakeDataset()).ok());
  const long base_len = engine.ShareDataset("bdd")->stream_length();

  auto grow = engine.GrowDataset("bdd", base_len + 100, 3);
  ASSERT_TRUE(grow.ok());
  EXPECT_EQ(grow.value().appended, 100);
  EXPECT_EQ(grow.value().frame_epoch, 3u);

  // Absolute replay: converges, adds nothing, keeps the epoch.
  auto replay = engine.GrowDataset("bdd", base_len + 100, 3);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().appended, 0);
  EXPECT_EQ(replay.value().frame_epoch, 3u);
  EXPECT_EQ(replay.value().stream_length, base_len + 100);

  // Stale epoch never regresses a newer one.
  auto stale = engine.GrowDataset("bdd", base_len + 50, 1);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value().appended, 0);
  EXPECT_EQ(stale.value().frame_epoch, 3u);

  EXPECT_FALSE(engine.AppendFrames("bdd", 0).ok());
  EXPECT_EQ(engine.AppendFrames("missing", 10).status().code(),
            common::StatusCode::kNotFound);

  // A dataset assembled from parts has no stream seed: appends refuse.
  auto frozen = MakeDataset();
  auto parts = video::SyntheticDataset::FromParts(
      frozen.profile(), {frozen.video(0), frozen.video(1), frozen.video(2)},
      {0}, {1}, {2});
  ASSERT_TRUE(engine.RegisterDataset("frozen", std::move(parts)).ok());
  EXPECT_EQ(engine.AppendFrames("frozen", 10).status().code(),
            common::StatusCode::kFailedPrecondition);

  // In-flight snapshots: a query running over the pre-append dataset is
  // not torn by a concurrent append (copy-on-write swap) — covered
  // implicitly here by growing while nothing ran; the cluster drill
  // exercises the concurrent case under load.
}

// The sharded front: appends and subscriptions route to the dataset's home
// shard, stats aggregate the stream counters, and the disk-shared plan
// keeps planner_runs at zero group-wide.
TEST_F(StreamServingTest, EngineGroupRoutesAppendsAndSubscriptions) {
  engine::EngineGroup::Options gopts;
  gopts.num_shards = 2;
  gopts.engine = EngineOptions();
  engine::EngineGroup group(gopts);
  ASSERT_TRUE(group.RegisterDataset("bdd", MakeDataset()).ok());
  const long base_len =
      group.engine_for("bdd").ShareDataset("bdd")->stream_length();

  engine::SubscribeOptions sopts;
  auto sub = group.Subscribe("bdd", CrossRightQuery(), sopts);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  auto first = sub.value().Next(0, kWaitMs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  auto appended = group.AppendFrames("bdd", 64);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  auto second = sub.value().Next(first.value().seq, kWaitMs);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().result.window_end, base_len + 64);

  EXPECT_EQ(group.planner_runs(), 0);  // disk plan from the drill
  auto stats = group.Stats();
  EXPECT_EQ(stats.appends, 1);
  EXPECT_EQ(stats.subscribes, 1);
  EXPECT_GE(stats.stream_results, 2);
  sub.value().Cancel();
}

}  // namespace
}  // namespace zeus
