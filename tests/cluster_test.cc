// End-to-end tests for the multi-process cluster layer: ShardServer +
// RemoteShard over real TCP, the deterministic fault-injection scenarios
// (drop / delay / close / corrupt), and the failover drills — an
// in-process one (ShardServer::Kill + manual health passes, fully
// deterministic, ASan-friendly) and a real-process one (fork/exec shardd,
// SIGKILL mid-load). The invariant under test throughout is the cluster's
// failure contract: a query either completes bit-identical to the
// single-process engine or fails with an explicitly retryable status —
// and after a failover, the re-homed dataset answers from warmed plans
// (plan_seconds == 0, no new planner runs).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/remote_shard.h"
#include "cluster/router.h"
#include "cluster/shard_server.h"
#include "net/fault.h"
#include "video/dataset.h"

namespace zeus {
namespace {

namespace fs = std::filesystem;

constexpr char kSql[] =
    "SELECT segment_ids FROM UDF(video) "
    "WHERE action_class = 'cross-right' AND accuracy >= 80%";

cluster::DatasetSpec SmokeSpec() {
  cluster::DatasetSpec spec;
  spec.name = "d";
  spec.family = video::DatasetFamily::kBdd100kLike;
  spec.seed = 17;
  spec.num_videos = 10;
  spec.frames_per_video = 160;
  return spec;
}

engine::QueryEngine::Options EngineOptions(const std::string& persist_dir) {
  engine::QueryEngine::Options opts;
  opts.num_workers = 2;
  opts.cache.persist_dir = persist_dir;
  // Every engine in a bit-identity comparison must share these knobs:
  // identical planner options + identical dataset spec => identical plan.
  opts.planner = core::QueryPlanner::ReducedOptions();
  return opts;
}

void ExpectSameOutcome(const engine::QueryResult& a,
                       const engine::QueryResult& b) {
  EXPECT_TRUE(engine::SameSegments(a, b))
      << a.segments.size() << " vs " << b.segments.size() << " segments";
  EXPECT_EQ(a.metrics.tp, b.metrics.tp);
  EXPECT_EQ(a.metrics.fp, b.metrics.fp);
  EXPECT_EQ(a.metrics.fn, b.metrics.fn);
  EXPECT_EQ(a.metrics.tn, b.metrics.tn);
}

class FaultGuard {
 public:
  explicit FaultGuard(net::FaultInjector* injector) {
    net::SetFaultInjector(injector);
  }
  ~FaultGuard() { net::SetFaultInjector(nullptr); }
};

// ---- Shared fixture: one shard server, one trained plan --------------------

// The reference engine trains the smoke dataset's plan ONCE into the shared
// persist dir; the shard server warms from that catalog, so every test gets
// a bit-identity baseline and a warm shard without retraining.
class ClusterTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    persist_root_ = new std::string(testing::TempDir() + "/zeus_cluster_" +
                                    std::to_string(::getpid()));
    fs::remove_all(*persist_root_);
    fs::create_directories(*persist_root_ + "/shared");

    const cluster::DatasetSpec spec = SmokeSpec();
    ref_engine_ =
        new engine::QueryEngine(EngineOptions(*persist_root_ + "/shared"));
    ASSERT_TRUE(ref_engine_
                    ->RegisterDataset(spec.name,
                                      video::SyntheticDataset::Generate(
                                          cluster::ProfileFor(spec), spec.seed))
                    .ok());
    auto ref = ref_engine_->Execute(spec.name, kSql);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ref_result_ = new engine::QueryResult(ref.value());

    cluster::ShardServer::Options sopts;
    sopts.engine = EngineOptions(*persist_root_ + "/shared");
    sopts.name = "s0";
    server_ = new cluster::ShardServer(sopts);
    ASSERT_TRUE(server_->Start().ok());

    cluster::RemoteShard::Options copts;
    copts.port = server_->port();
    copts.name = "fixture";
    client_ = new cluster::RemoteShard(copts);
    auto reg = client_->RegisterDataset(spec);
    ASSERT_TRUE(reg.ok()) << reg.status().ToString();
    // The warm start IS the plan-catalog handoff: the server must have
    // loaded the reference engine's persisted plan, not retrained.
    EXPECT_GE(reg.value(), 1u);
  }

  static void TearDownTestSuite() {
    delete client_;
    client_ = nullptr;
    if (server_ != nullptr) server_->Stop();
    delete server_;
    server_ = nullptr;
    delete ref_engine_;
    ref_engine_ = nullptr;
    delete ref_result_;
    ref_result_ = nullptr;
    std::error_code ec;
    fs::remove_all(*persist_root_, ec);
    delete persist_root_;
    persist_root_ = nullptr;
  }

  static cluster::ExecRequest Exec() {
    cluster::ExecRequest req;
    req.dataset = SmokeSpec().name;
    req.sql = kSql;
    return req;
  }

  static std::string* persist_root_;
  static engine::QueryEngine* ref_engine_;
  static engine::QueryResult* ref_result_;
  static cluster::ShardServer* server_;
  static cluster::RemoteShard* client_;
};

std::string* ClusterTest::persist_root_ = nullptr;
engine::QueryEngine* ClusterTest::ref_engine_ = nullptr;
engine::QueryResult* ClusterTest::ref_result_ = nullptr;
cluster::ShardServer* ClusterTest::server_ = nullptr;
cluster::RemoteShard* ClusterTest::client_ = nullptr;

// ---- Basic transport-level serving ----------------------------------------

TEST_F(ClusterTest, RemoteExecuteIsBitIdenticalAndWarmStarted) {
  auto remote = client_->Execute(Exec());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ExpectSameOutcome(*ref_result_, remote.value());
  // Plan came from the shared catalog, not a planner run.
  EXPECT_EQ(remote.value().plan_seconds, 0.0);

  auto stats = client_->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().stats.planner_runs, 0);
  EXPECT_GE(stats.value().stats.disk_loads, 1);
  EXPECT_GE(stats.value().stats.completed, 1);
}

TEST_F(ClusterTest, RemoteTicketsMirrorTheEngineSurface) {
  auto ticket = client_->Submit(Exec());
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  auto result = ticket.value().Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameOutcome(*ref_result_, result.value());

  // The wait reaped the server-side ticket: a second wait is NotFound.
  auto again = client_->TicketWait(ticket.value().id());
  EXPECT_EQ(again.status().code(), common::StatusCode::kNotFound);

  // Cancel is idempotent — unknown (already-reaped) ids are a no-op OK.
  EXPECT_TRUE(client_->Cancel(ticket.value().id()).ok());
  EXPECT_TRUE(client_->Cancel(999999).ok());
}

TEST_F(ClusterTest, ServerSideErrorsArriveAsTheSameStatus) {
  cluster::ExecRequest bad = Exec();
  bad.dataset = "no-such-dataset";
  auto result = client_->Execute(bad);
  EXPECT_EQ(result.status().code(), common::StatusCode::kNotFound);

  cluster::ExecRequest garbage = Exec();
  garbage.sql = "SELEKT nothing";
  auto parse = client_->Execute(garbage);
  EXPECT_FALSE(parse.ok());
  EXPECT_FALSE(common::IsRetryable(parse.status().code()));
}

// ---- Fault-injection scenarios ---------------------------------------------

TEST_F(ClusterTest, InjectedCloseOnWriteRetriesTransparently) {
  net::FaultInjector injector;
  FaultGuard guard(&injector);
  net::FaultRule rule;
  rule.action = net::FaultAction::kClose;
  rule.direction = net::FaultDirection::kSend;
  rule.match_type = true;
  rule.type = net::FrameType::kExecute;
  rule.tag_contains = "client:fixture";
  injector.AddRule(rule);

  // The connection dies before the frame leaves, so the server cannot have
  // executed — the client proves this and retries even a non-idempotent
  // Execute. The caller sees nothing but success.
  auto result = client_->Execute(Exec());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameOutcome(*ref_result_, result.value());
  EXPECT_EQ(injector.fired_count(), 1);
}

TEST_F(ClusterTest, DroppedResponseOnExecuteSurfacesRetryable) {
  // A dedicated single-attempt client: the fixture client would mask the
  // contract with its own retries.
  cluster::RemoteShard::Options copts;
  copts.port = server_->port();
  copts.name = "oneshot";
  copts.max_attempts = 1;
  copts.call_deadline_ms = 1'500;
  cluster::RemoteShard oneshot(copts);

  net::FaultInjector injector;
  FaultGuard guard(&injector);
  net::FaultRule rule;
  rule.action = net::FaultAction::kDrop;
  rule.direction = net::FaultDirection::kRecv;
  rule.match_type = true;
  rule.type = net::FrameType::kResult;
  rule.tag_contains = "client:oneshot";
  injector.AddRule(rule);

  // The request was fully written and the reply vanished: the query may
  // have run, so a non-idempotent Execute must NOT be silently retried —
  // the client surfaces an explicitly retryable kUnavailable instead.
  auto result = oneshot.Execute(Exec());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kUnavailable);
  EXPECT_TRUE(common::IsRetryable(result.status().code()));
  EXPECT_EQ(injector.fired_count(), 1);

  // The caller applies its own policy — a manual retry completes with the
  // bit-identical answer.
  auto retried = oneshot.Execute(Exec());
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ExpectSameOutcome(*ref_result_, retried.value());
}

TEST_F(ClusterTest, CorruptServerFrameIsRejectedThenRetried) {
  net::FaultInjector injector;
  FaultGuard guard(&injector);
  net::FaultRule rule;
  rule.action = net::FaultAction::kCorrupt;
  rule.direction = net::FaultDirection::kSend;
  rule.match_type = true;
  rule.type = net::FrameType::kStatsReply;
  rule.tag_contains = "server:s0";
  injector.AddRule(rule);

  // Attempt 1 reads a corrupt frame (crc mismatch, connection poisoned);
  // Stats is idempotent, so attempt 2 succeeds on a fresh connection.
  auto stats = client_->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(injector.fired_count(), 1);
}

TEST_F(ClusterTest, SlowPeerDelaysButCompletes) {
  net::FaultInjector injector;
  FaultGuard guard(&injector);
  net::FaultRule rule;
  rule.action = net::FaultAction::kDelayMs;
  rule.delay_ms = 300;
  rule.direction = net::FaultDirection::kSend;
  rule.match_type = true;
  rule.type = net::FrameType::kStatsReply;
  rule.tag_contains = "server:s0";
  injector.AddRule(rule);

  const auto start = std::chrono::steady_clock::now();
  auto stats = client_->Stats();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            250);
}

TEST_F(ClusterTest, PartitionedShardTimesOutRetryably) {
  // A partition (peer present but silent) is a delay far past the
  // deadline: every attempt times out, the caller gets kUnavailable.
  cluster::RemoteShard::Options copts;
  copts.port = server_->port();
  copts.name = "partition";
  copts.max_attempts = 2;
  copts.backoff_base_ms = 10;
  copts.call_deadline_ms = 300;
  cluster::RemoteShard client(copts);

  net::FaultInjector injector;
  FaultGuard guard(&injector);
  net::FaultRule rule;
  rule.action = net::FaultAction::kDrop;
  rule.direction = net::FaultDirection::kSend;
  rule.tag_contains = "client:partition";
  rule.times = -1;  // the partition does not heal
  injector.AddRule(rule);

  auto st = client.Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(common::IsRetryable(st.code()));
  EXPECT_GE(injector.fired_count(), 2);  // every attempt swallowed
}

// ---- In-process failover drill (deterministic) -----------------------------

TEST_F(ClusterTest, RouterFailsOverKilledShardWithWarmPlansAndSameAnswers) {
  const std::string dir = *persist_root_ + "/router_drill";
  fs::create_directories(dir);

  std::vector<std::unique_ptr<cluster::ShardServer>> shards;
  cluster::Router::Options ropts;
  for (int i = 0; i < 3; ++i) {
    cluster::ShardServer::Options sopts;
    sopts.engine = EngineOptions(dir);
    sopts.name = "drill" + std::to_string(i);
    shards.push_back(std::make_unique<cluster::ShardServer>(sopts));
    ASSERT_TRUE(shards.back()->Start().ok());
    ropts.shards.push_back({"127.0.0.1", shards.back()->port()});
  }
  ropts.health_interval_ms = 0;  // tests drive the checker deterministically
  ropts.misses_to_dead = 2;
  ropts.health_deadline_ms = 1'000;
  ropts.name = "drillrouter";
  cluster::Router router(std::move(ropts));
  ASSERT_TRUE(router.Start().ok());

  cluster::DatasetSpec spec = SmokeSpec();
  spec.name = "drill-d";
  auto reg = router.RegisterDataset(spec);
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();

  const int home = router.HomeOf(spec.name);
  ASSERT_GE(home, 0);
  auto r0 = router.Execute(spec.name, kSql);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  // Trained exactly once, on the home shard.
  EXPECT_GT(r0.value().plan_seconds, 0.0);
  EXPECT_EQ(router.CheckNow(), 0);  // healthy pass; snapshots the stats
  const auto before = router.Stats();
  EXPECT_EQ(before.stats.planner_runs, 1);

  // Kill the home shard abruptly (the in-process stand-in for kill -9).
  shards[static_cast<size_t>(home)]->Kill();

  // Before the checker notices, queries fail — but explicitly retryably,
  // never with a wrong or empty answer.
  auto during = router.Execute(spec.name, kSql);
  ASSERT_FALSE(during.ok());
  EXPECT_TRUE(common::IsRetryable(during.status().code()))
      << during.status().ToString();

  // Two missed beats declare the shard dead and re-home its datasets.
  int newly_dead = router.CheckNow();
  newly_dead += router.CheckNow();
  EXPECT_EQ(newly_dead, 1);
  EXPECT_FALSE(router.ShardAlive(home));
  EXPECT_EQ(router.num_alive(), 2);
  const int new_home = router.HomeOf(spec.name);
  EXPECT_NE(new_home, home);

  const cluster::ClusterHealth health = router.Health();
  EXPECT_EQ(health.failovers, 1);
  EXPECT_EQ(health.rehomed_datasets, 1);
  EXPECT_EQ(health.dead_shards, 1);

  // The re-homed dataset answers bit-identically from warmed plans: no new
  // planner run anywhere in the cluster, and the totals never went
  // backwards despite the death (the dead shard's history is carried).
  auto r1 = router.Execute(spec.name, kSql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ExpectSameOutcome(r0.value(), r1.value());
  EXPECT_EQ(r1.value().plan_seconds, 0.0);

  const auto after = router.Stats();
  EXPECT_EQ(after.stats.planner_runs, before.stats.planner_runs);
  EXPECT_GE(after.stats.completed, before.stats.completed);
  EXPECT_EQ(after.num_shards, 2);
  EXPECT_EQ(after.failovers, 1);

  // The /metrics endpoint reports the failover (HTTP on the frame port).
  net::TcpSocket http;
  ASSERT_TRUE(http.Connect("127.0.0.1", router.port(), 2'000).ok());
  const std::string get = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(http.WriteAll(get.data(), get.size(), 2'000).ok());
  std::string response;
  char buf[4096];
  for (;;) {
    // Read until the server closes (Connection: close).
    size_t chunk = sizeof(buf);
    common::Status st = http.ReadAll(buf, 1, 2'000);
    if (!st.ok()) break;
    response.push_back(buf[0]);
    (void)chunk;
  }
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("zeus_cluster_failovers_total 1\n"),
            std::string::npos);
  EXPECT_NE(response.find("zeus_shards_alive 2\n"), std::string::npos);

  router.Stop();
  for (auto& shard : shards) shard->Stop();
}

// ---- Replicated failover: zero unavailability ------------------------------

// With replication >= 2 a dead primary must be INVISIBLE to clients: the
// very next Execute — issued before any health pass has noticed the death —
// fails over to a live replica inside the call and returns the bit-identical
// answer, kCertain, from a propagated plan. This is the contract the R=1
// drill above cannot offer (there, the same window is explicitly retryable).
TEST_F(ClusterTest, ReplicatedPrimaryKillIsZeroUnavailability) {
  const std::string dir = *persist_root_ + "/repl_drill";
  fs::create_directories(dir);

  std::vector<std::unique_ptr<cluster::ShardServer>> shards;
  cluster::Router::Options ropts;
  for (int i = 0; i < 3; ++i) {
    cluster::ShardServer::Options sopts;
    sopts.engine = EngineOptions(dir);
    sopts.name = "repl" + std::to_string(i);
    shards.push_back(std::make_unique<cluster::ShardServer>(sopts));
    ASSERT_TRUE(shards.back()->Start().ok());
    ropts.shards.push_back({"127.0.0.1", shards.back()->port()});
  }
  ropts.health_interval_ms = 0;  // tests drive the checker deterministically
  ropts.misses_to_dead = 2;
  ropts.health_deadline_ms = 1'000;
  ropts.replication = 2;
  ropts.name = "replrouter";
  cluster::Router router(std::move(ropts));
  ASSERT_TRUE(router.Start().ok());

  cluster::DatasetSpec spec = SmokeSpec();
  spec.name = "repl-d";
  auto reg = router.RegisterDataset(spec);
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  ASSERT_EQ(router.ReplicasOf(spec.name).size(), 2u);

  // First query trains the plan on the primary; the router propagates it to
  // the replica group before returning control here. The triggering answer
  // itself is certain — it matched the committed epoch when it was served.
  auto r0 = router.Execute(spec.name, kSql);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_GT(r0.value().plan_seconds, 0.0);
  EXPECT_EQ(r0.value().consistency, engine::Consistency::kCertain);
  EXPECT_EQ(router.CheckNow(), 0);
  EXPECT_EQ(router.Stats().stats.planner_runs, 1);
  EXPECT_EQ(router.Health().replicas_behind, 0);

  const int home = router.HomeOf(spec.name);
  ASSERT_GE(home, 0);
  shards[static_cast<size_t>(home)]->Kill();

  // No health pass has run: the router still believes the primary is alive.
  // The call itself must ride over the death — THE zero-unavailability
  // assertion. No retry loop here on purpose.
  auto r1 = router.Execute(spec.name, kSql);
  ASSERT_TRUE(r1.ok()) << "client saw the primary die: "
                       << r1.status().ToString();
  ExpectSameOutcome(r0.value(), r1.value());
  EXPECT_EQ(r1.value().plan_seconds, 0.0);
  EXPECT_EQ(r1.value().consistency, engine::Consistency::kCertain)
      << r1.value().divergence;
  EXPECT_GE(router.Health().read_failovers, 1);

  // Now let the checker notice and repair: the dataset gets a replacement
  // replica so the group is back at full strength.
  int newly_dead = router.CheckNow();
  newly_dead += router.CheckNow();
  EXPECT_EQ(newly_dead, 1);
  const cluster::ClusterHealth health = router.Health();
  EXPECT_EQ(health.failovers, 1);
  EXPECT_EQ(health.rehomed_datasets, 1);
  EXPECT_EQ(router.ReplicasOf(spec.name).size(), 2u);
  EXPECT_EQ(router.Health().replicas_behind, 0);

  auto r2 = router.Execute(spec.name, kSql);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ExpectSameOutcome(r0.value(), r2.value());
  EXPECT_EQ(r2.value().consistency, engine::Consistency::kCertain);

  // The whole drill never trained a second plan and never served degraded.
  EXPECT_EQ(router.Stats().stats.planner_runs, 1);
  EXPECT_EQ(router.Health().degraded_answers, 0);
  EXPECT_GE(router.Health().certain_answers, 3);

  router.Stop();
  for (auto& shard : shards) shard->Stop();
}

// ---- Live streams through the cluster --------------------------------------

// The full streaming contract, end to end over real TCP with a mid-stream
// primary kill: appends fan to every replica with absolute (target, epoch)
// targets, a standing query keeps delivering incremental results across
// the failover (the router re-attaches it to the new primary with the same
// subscription id and dedupes the replayed window by frame epoch), every
// delivered result is kCertain, planner_runs stays flat the whole time,
// and the final incremental answer is bit-identical to a cold one-shot
// over the same prefix in a single-process engine.
TEST_F(ClusterTest, StreamSubscriptionSurvivesPrimaryKill) {
  const std::string dir = *persist_root_ + "/stream_drill";
  fs::create_directories(dir);

  std::vector<std::unique_ptr<cluster::ShardServer>> shards;
  cluster::Router::Options ropts;
  for (int i = 0; i < 3; ++i) {
    cluster::ShardServer::Options sopts;
    sopts.engine = EngineOptions(dir);
    sopts.name = "stream" + std::to_string(i);
    shards.push_back(std::make_unique<cluster::ShardServer>(sopts));
    ASSERT_TRUE(shards.back()->Start().ok());
    ropts.shards.push_back({"127.0.0.1", shards.back()->port()});
  }
  ropts.health_interval_ms = 0;  // tests drive the checker deterministically
  ropts.misses_to_dead = 2;
  ropts.health_deadline_ms = 1'000;
  ropts.replication = 2;
  ropts.name = "streamrouter";
  cluster::Router router(std::move(ropts));
  ASSERT_TRUE(router.Start().ok());

  cluster::DatasetSpec spec = SmokeSpec();
  spec.name = "stream-d";
  ASSERT_TRUE(router.RegisterDataset(spec).ok());
  ASSERT_EQ(router.ReplicasOf(spec.name).size(), 2u);

  // Train the plan once (propagated to the replica group before control
  // returns), then pin the planner-run budget for the whole drill.
  auto r0 = router.Execute(spec.name, kSql);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_GT(r0.value().plan_seconds, 0.0);
  EXPECT_EQ(router.CheckNow(), 0);
  const auto planner_runs_before = router.Stats().stats.planner_runs;
  EXPECT_EQ(planner_runs_before, 1);

  // Subscribe through the router (sub_id 0 = router assigns). The initial
  // window covers the base prefix — the same prefix the one-shot above
  // answered — so the first incremental result must match it bit for bit.
  cluster::SubscribeRequest sub;
  sub.dataset = spec.name;
  sub.sql = kSql;
  auto attach = router.Subscribe(sub);
  ASSERT_TRUE(attach.ok()) << attach.status().ToString();
  const uint64_t sub_id = attach.value().sub_id;
  ASSERT_GT(sub_id, 0u);
  EXPECT_FALSE(attach.value().attached_existing);

  auto u1 = router.StreamPoll(sub_id, 0, 30'000);
  ASSERT_TRUE(u1.ok()) << u1.status().ToString();
  EXPECT_EQ(u1.value().seq, 1u);
  ExpectSameOutcome(r0.value(), u1.value().result);
  EXPECT_EQ(u1.value().result.consistency, engine::Consistency::kCertain)
      << u1.value().result.divergence;

  // Re-sending the same subscribe is an idempotent attach, not a second
  // subscription.
  cluster::SubscribeRequest replay = sub;
  replay.sub_id = sub_id;
  auto again = router.Subscribe(replay);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().attached_existing);

  // Append through the router: the reply reports the absolute stream state
  // and the standing query delivers the grown window incrementally.
  const long base = cluster::ProfileFor(spec).frames_per_video;
  auto a1 = router.AppendFrames(spec.name, 64);
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(a1.value().stream_length, static_cast<uint64_t>(base) + 64);
  EXPECT_EQ(a1.value().appended, 64u);

  auto u2 = router.StreamPoll(sub_id, u1.value().seq, 30'000);
  ASSERT_TRUE(u2.ok()) << u2.status().ToString();
  EXPECT_EQ(u2.value().seq, 2u);
  EXPECT_EQ(u2.value().result.window_end, base + 64);
  EXPECT_EQ(u2.value().result.consistency, engine::Consistency::kCertain)
      << u2.value().result.divergence;

  // A healthy pass refreshes every shard's stats snapshot, so the carry
  // the failover folds in covers the updates delivered so far.
  EXPECT_EQ(router.CheckNow(), 0);

  // Kill the primary mid-stream and let the checker notice. The surviving
  // replica already holds every appended frame (appends fan to the whole
  // group), so the re-homed dataset needs no frame replay to keep serving.
  const int home = router.HomeOf(spec.name);
  ASSERT_GE(home, 0);
  shards[static_cast<size_t>(home)]->Kill();
  int newly_dead = router.CheckNow();
  newly_dead += router.CheckNow();
  EXPECT_EQ(newly_dead, 1);

  // Ingestion continues against the new primary, and the next poll
  // re-attaches the subscription there under the SAME id. The re-attached
  // host replays its current window; the router's frame-epoch dedupe line
  // guarantees the consumer sees the new epoch exactly once.
  auto a2 = router.AppendFrames(spec.name, 64);
  ASSERT_TRUE(a2.ok()) << a2.status().ToString();
  EXPECT_EQ(a2.value().stream_length, static_cast<uint64_t>(base) + 128);

  auto u3 = router.StreamPoll(sub_id, u2.value().seq, 30'000);
  ASSERT_TRUE(u3.ok()) << u3.status().ToString();
  EXPECT_EQ(u3.value().seq, 3u);
  EXPECT_EQ(u3.value().result.window_end, base + 128);
  EXPECT_EQ(u3.value().result.consistency, engine::Consistency::kCertain)
      << u3.value().result.divergence;

  // The whole drill — subscription windows, failover re-attach, appends on
  // two primaries — never trained a second plan and never served a
  // non-certain result.
  EXPECT_EQ(router.Stats().stats.planner_runs, planner_runs_before);
  EXPECT_EQ(router.Health().degraded_answers, 0);

  // Bit-identity through the cluster: a cold single-process engine grown
  // to the same prefix answers with the same bytes the subscriber got
  // incrementally (same shared plan catalog, so no planner run either).
  engine::QueryEngine local(EngineOptions(dir));
  ASSERT_TRUE(local
                  .RegisterDataset(spec.name,
                                   video::SyntheticDataset::Generate(
                                       cluster::ProfileFor(spec), spec.seed))
                  .ok());
  ASSERT_TRUE(local.GrowDataset(spec.name, base + 128, 1).ok());
  auto ref = local.Execute(spec.name, kSql);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(ref.value().plan_seconds, 0.0);
  ExpectSameOutcome(ref.value(), u3.value().result);

  // The stream counters made it into the folded cluster stats (each
  // replica counts the appends it applied).
  const auto stats = router.Stats();
  EXPECT_GE(stats.stats.appends, 2);
  EXPECT_GE(stats.stats.appended_frames, 128);
  EXPECT_GE(stats.stats.subscribes, 1);
  EXPECT_GE(stats.stats.stream_results, 3);

  // Unsubscribe is idempotent, through the router too.
  EXPECT_TRUE(router.Unsubscribe(sub_id).ok());
  EXPECT_TRUE(router.Unsubscribe(sub_id).ok());
  auto gone = router.StreamPoll(sub_id, 0, 1'000);
  EXPECT_EQ(gone.status().code(), common::StatusCode::kNotFound);

  router.Stop();
  for (auto& shard : shards) shard->Stop();
}

// A replica that could not apply the latest plan epoch must say so: while
// it is the only live holder its answers come back kDegraded with a
// divergence reason — never silently presented as certain — and once the
// partition heals, repair catches it up and answers are certain again.
TEST_F(ClusterTest, LaggingReplicaServesDegradedUntilRepaired) {
  const std::string dir = *persist_root_ + "/lag_drill";
  fs::create_directories(dir);

  std::vector<std::unique_ptr<cluster::ShardServer>> shards;
  cluster::Router::Options ropts;
  for (int i = 0; i < 3; ++i) {
    cluster::ShardServer::Options sopts;
    sopts.engine = EngineOptions(dir);
    sopts.name = "lag" + std::to_string(i);
    shards.push_back(std::make_unique<cluster::ShardServer>(sopts));
    ASSERT_TRUE(shards.back()->Start().ok());
    ropts.shards.push_back({"127.0.0.1", shards.back()->port()});
  }
  ropts.health_interval_ms = 0;
  ropts.misses_to_dead = 2;
  ropts.health_deadline_ms = 1'000;
  ropts.replication = 2;
  ropts.name = "lagrouter";
  cluster::Router router(std::move(ropts));
  ASSERT_TRUE(router.Start().ok());

  cluster::DatasetSpec spec = SmokeSpec();
  spec.name = "lag-d";
  ASSERT_TRUE(router.RegisterDataset(spec).ok());
  const int home = router.HomeOf(spec.name);
  ASSERT_GE(home, 0);
  const auto replicas = router.ReplicasOf(spec.name);
  ASSERT_EQ(replicas.size(), 2u);
  int secondary = -1;
  for (int id : replicas) {
    if (id != home) secondary = id;
  }
  ASSERT_GE(secondary, 0);

  engine::QueryResult reference;
  {
    net::FaultInjector injector;
    FaultGuard guard(&injector);
    // The secondary cannot receive plan syncs (its link to the router eats
    // every kSyncPlans frame)...
    net::FaultRule sync_rule;
    sync_rule.action = net::FaultAction::kClose;
    sync_rule.direction = net::FaultDirection::kSend;
    sync_rule.match_type = true;
    sync_rule.type = net::FrameType::kSyncPlans;
    sync_rule.tag_contains = "lagrouter->s" + std::to_string(secondary);
    sync_rule.times = -1;
    injector.AddRule(sync_rule);
    // ...and repair cannot recruit a replacement replica either, so the
    // lagging secondary stays the only live holder after the kill.
    net::FaultRule reg_rule;
    reg_rule.action = net::FaultAction::kClose;
    reg_rule.direction = net::FaultDirection::kSend;
    reg_rule.match_type = true;
    reg_rule.type = net::FrameType::kRegisterDataset;
    reg_rule.tag_contains = "lagrouter->";
    reg_rule.times = -1;
    injector.AddRule(reg_rule);

    // Training bumps the committed epoch; the propagation to the secondary
    // fails, leaving it one epoch behind.
    auto r0 = router.Execute(spec.name, kSql);
    ASSERT_TRUE(r0.ok()) << r0.status().ToString();
    EXPECT_GT(r0.value().plan_seconds, 0.0);
    EXPECT_EQ(r0.value().consistency, engine::Consistency::kCertain);
    reference = r0.value();
    EXPECT_GE(router.Health().replicas_behind, 1);
    // Healthy pass: snapshots every shard's stats so the primary's single
    // planner run survives its upcoming death in the aggregate.
    EXPECT_EQ(router.CheckNow(), 0);

    // Ask the secondary itself: it holds the dataset at the stale epoch.
    cluster::RemoteShard::Options popts;
    popts.port = shards[static_cast<size_t>(secondary)]->port();
    popts.name = "epochprobe";
    cluster::RemoteShard probe(popts);
    auto ep = probe.EpochOf(spec.name);
    ASSERT_TRUE(ep.ok()) << ep.status().ToString();
    EXPECT_TRUE(ep.value().has_dataset);
    EXPECT_EQ(ep.value().epoch, 1u);

    // Kill the primary; after the health passes the stale secondary is the
    // only live holder left.
    shards[static_cast<size_t>(home)]->Kill();
    router.CheckNow();
    router.CheckNow();
    ASSERT_FALSE(router.ShardAlive(home));

    auto r1 = router.Execute(spec.name, kSql);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    // Still the right answer (the plan loads from the shared catalog), but
    // honestly labelled: degraded, with a reason a human can read.
    ExpectSameOutcome(reference, r1.value());
    EXPECT_EQ(r1.value().consistency, engine::Consistency::kDegraded);
    EXPECT_FALSE(r1.value().divergence.empty());
    EXPECT_GE(router.Health().degraded_answers, 1);
    EXPECT_EQ(router.Stats().stats.planner_runs, 1);
  }  // partition heals: the injector is gone

  // The next maintenance pass syncs the lagging replica (and recruits a
  // replacement), after which answers are certain again.
  router.CheckNow();
  EXPECT_EQ(router.Health().replicas_behind, 0);
  auto r2 = router.Execute(spec.name, kSql);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ExpectSameOutcome(reference, r2.value());
  EXPECT_EQ(r2.value().consistency, engine::Consistency::kCertain)
      << r2.value().divergence;
  EXPECT_EQ(router.Stats().stats.planner_runs, 1);

  router.Stop();
  for (auto& shard : shards) shard->Stop();
}

// ---- Real-process SIGKILL drill --------------------------------------------

// Spawns real shardd processes, hammers queries through the router, and
// SIGKILLs the home shard mid-load. Every query must eventually complete
// with the bit-identical answer (retryable failures ridden out, exactly as
// a real client would), and the post-failover cluster must not have
// retrained the plan.
class ShardProcess {
 public:
  static std::string BinaryPath() {
    // shardd sits next to the test binary in the build tree.
    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    if (n <= 0) return "";
    self[n] = '\0';
    const fs::path dir = fs::path(self).parent_path();
    const fs::path shardd = dir / "shardd";
    return fs::exists(shardd) ? shardd.string() : "";
  }

  bool Spawn(const std::string& binary, const std::string& persist_dir,
             const std::string& port_file, const std::string& name) {
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::execl(binary.c_str(), "shardd", "--persist-dir", persist_dir.c_str(),
              "--fast-planner", "--workers", "2", "--port-file",
              port_file.c_str(), "--name", name.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    return true;
  }

  int WaitForPort(const std::string& port_file, int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(port_file);
      int port = 0;
      if (in >> port && port > 0) return port;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return 0;
  }

  void Kill9() {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
  }

  ~ShardProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

TEST(ClusterProcessTest, SigkillMidLoadFailsOverBitIdentically) {
  const std::string binary = ShardProcess::BinaryPath();
  if (binary.empty()) {
    GTEST_SKIP() << "shardd binary not found next to the test binary";
  }
  const std::string root = testing::TempDir() + "/zeus_sigkill_" +
                           std::to_string(::getpid());
  fs::remove_all(root);
  fs::create_directories(root + "/plans");

  ShardProcess procs[3];
  cluster::Router::Options ropts;
  for (int i = 0; i < 3; ++i) {
    const std::string port_file =
        root + "/shard" + std::to_string(i) + ".port";
    ASSERT_TRUE(procs[i].Spawn(binary, root + "/plans", port_file,
                               "proc" + std::to_string(i)));
    const int port = procs[i].WaitForPort(port_file, 15'000);
    ASSERT_GT(port, 0) << "shard " << i << " never published its port";
    ropts.shards.push_back({"127.0.0.1", port});
  }
  // Background health checking: the failover must happen while the load
  // loop below is mid-flight, with no test intervention.
  ropts.health_interval_ms = 100;
  ropts.health_deadline_ms = 500;
  ropts.misses_to_dead = 2;
  ropts.name = "procrouter";
  cluster::Router router(std::move(ropts));
  ASSERT_TRUE(router.Start().ok());

  cluster::DatasetSpec spec = SmokeSpec();
  spec.name = "proc-d";
  auto reg = router.RegisterDataset(spec);
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  const int home = router.HomeOf(spec.name);
  ASSERT_GE(home, 0);

  constexpr int kQueries = 10;
  engine::QueryResult reference;
  bool have_reference = false;
  int completed = 0;
  for (int q = 0; q < kQueries; ++q) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    for (;;) {
      auto result = router.Execute(spec.name, kSql);
      if (result.ok()) {
        if (!have_reference) {
          reference = result.value();
          have_reference = true;
        } else {
          // Bit-identical across the kill: THE cluster contract.
          ExpectSameOutcome(reference, result.value());
        }
        ++completed;
        break;
      }
      // In-flight failures during the failover window must be explicitly
      // retryable — never a wrong or silently-empty answer.
      ASSERT_TRUE(common::IsRetryable(result.status().code()))
          << result.status().ToString();
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "query " << q << " never recovered: "
          << result.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (q == 2) {
      // kill -9 the home shard mid-load, after the plan is trained and
      // persisted (query 0 did that).
      procs[static_cast<size_t>(home)].Kill9();
    }
  }
  EXPECT_EQ(completed, kQueries);

  // The health thread declared the shard dead and re-homed the dataset.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.ShardAlive(home) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_FALSE(router.ShardAlive(home));
  EXPECT_EQ(router.num_alive(), 2);
  EXPECT_NE(router.HomeOf(spec.name), home);
  EXPECT_GE(router.Health().failovers, 1);
  EXPECT_GE(router.Health().rehomed_datasets, 1);

  // Post-failover: warm-plan answer, no retraining anywhere.
  auto after = router.Execute(spec.name, kSql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectSameOutcome(reference, after.value());
  EXPECT_EQ(after.value().plan_seconds, 0.0);
  // planner_runs counts at most the single cold training on the original
  // home (it can read 0 if the kill landed before a health probe snapshot
  // of that shard); what it must never do is grow with the failover.
  EXPECT_LE(router.Stats().stats.planner_runs, 1);

  // Bit-identity against the single-process engine: a local engine warmed
  // from the same catalog must produce the same answer the cluster did.
  engine::QueryEngine local(EngineOptions(root + "/plans"));
  ASSERT_TRUE(local
                  .RegisterDataset(spec.name,
                                   video::SyntheticDataset::Generate(
                                       cluster::ProfileFor(spec), spec.seed))
                  .ok());
  EXPECT_GE(local.WarmUpDataset(spec.name), 1u);
  auto local_result = local.Execute(spec.name, kSql);
  ASSERT_TRUE(local_result.ok());
  ExpectSameOutcome(local_result.value(), reference);

  router.Stop();
  std::error_code ec;
  fs::remove_all(root, ec);
}

}  // namespace
}  // namespace zeus
