// Unit tests for the SQL-ish action query parser (§1's query surface).

#include <gtest/gtest.h>

#include "core/query.h"

namespace zeus::core {
namespace {

TEST(QueryParserTest, PaperQueryParses) {
  auto r = QueryParser::Parse(
      "SELECT segment_ids FROM UDF(video) "
      "WHERE action_class = 'left-turn' AND accuracy >= 80%");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().primary_class(), video::ActionClass::kLeftTurn);
  EXPECT_DOUBLE_EQ(r.value().accuracy_target, 0.8);
  EXPECT_EQ(r.value().source, "video");
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  auto r = QueryParser::Parse(
      "select segment_ids from udf(video) where action_class = 'CrossRight'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().primary_class(), video::ActionClass::kCrossRight);
}

TEST(QueryParserTest, FractionalAccuracy) {
  auto r = QueryParser::Parse(
      "SELECT s FROM v WHERE action_class='pole-vault' AND accuracy >= 0.75");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().accuracy_target, 0.75);
  EXPECT_EQ(r.value().primary_class(), video::ActionClass::kPoleVault);
}

TEST(QueryParserTest, PercentOverHundredNormalized) {
  auto r = QueryParser::Parse(
      "SELECT s FROM v WHERE action_class='tennis-serve' AND accuracy >= 85");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().accuracy_target, 0.85);
}

TEST(QueryParserTest, DefaultAccuracyWhenOmitted) {
  auto r = QueryParser::Parse(
      "SELECT s FROM v WHERE action_class = 'ironing-clothes'");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().accuracy_target, 0.8);
}

TEST(QueryParserTest, StarProjectionAndSemicolon) {
  auto r = QueryParser::Parse(
      "SELECT * FROM UDF(cam0) WHERE action_class = 'clean-and-jerk';");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().source, "cam0");
}

TEST(QueryParserTest, RejectsUnknownClass) {
  auto r = QueryParser::Parse(
      "SELECT s FROM v WHERE action_class = 'moonwalk'");
  EXPECT_FALSE(r.ok());
}

TEST(QueryParserTest, RejectsMissingActionClass) {
  auto r = QueryParser::Parse("SELECT s FROM v WHERE accuracy >= 80%");
  EXPECT_FALSE(r.ok());
}

TEST(QueryParserTest, RejectsMalformedSyntax) {
  EXPECT_FALSE(QueryParser::Parse("SELECT FROM WHERE").ok());
  EXPECT_FALSE(QueryParser::Parse("").ok());
  EXPECT_FALSE(
      QueryParser::Parse("SELECT s FROM v WHERE action_class = left").ok());
  EXPECT_FALSE(QueryParser::Parse(
                   "SELECT s FROM v WHERE action_class = 'left-turn' garbage")
                   .ok());
}

TEST(QueryParserTest, RejectsAccuracyOutOfRange) {
  EXPECT_FALSE(QueryParser::Parse("SELECT s FROM v WHERE action_class = "
                                  "'left-turn' AND accuracy >= 150%")
                   .ok());
}

TEST(QueryParserTest, RejectsUnterminatedString) {
  EXPECT_FALSE(
      QueryParser::Parse("SELECT s FROM v WHERE action_class = 'left").ok());
}

TEST(QueryParserTest, ToStringRoundTripsThroughParser) {
  ActionQuery q;
  q.action_classes = {video::ActionClass::kTennisServe};
  q.accuracy_target = 0.75;
  auto r = QueryParser::Parse(q.ToString());
  ASSERT_TRUE(r.ok()) << q.ToString();
  EXPECT_EQ(r.value().primary_class(), q.primary_class());
  EXPECT_DOUBLE_EQ(r.value().accuracy_target, q.accuracy_target);
}

TEST(QueryParserTest, InListParsesMultipleClasses) {
  auto r = QueryParser::Parse(
      "SELECT s FROM UDF(video) WHERE action_class IN "
      "('cross-right', 'cross-left') AND accuracy >= 80%");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().action_classes.size(), 2u);
  EXPECT_EQ(r.value().action_classes[0], video::ActionClass::kCrossRight);
  EXPECT_EQ(r.value().action_classes[1], video::ActionClass::kCrossLeft);
}

TEST(QueryParserTest, InListRejectsDuplicates) {
  EXPECT_FALSE(QueryParser::Parse(
                   "SELECT s FROM v WHERE action_class IN "
                   "('cross-right', 'cross-right')")
                   .ok());
}

TEST(QueryParserTest, RejectsActionClassConstrainedTwice) {
  EXPECT_FALSE(QueryParser::Parse(
                   "SELECT s FROM v WHERE action_class = 'cross-right' AND "
                   "action_class = 'cross-left'")
                   .ok());
}

TEST(QueryParserTest, FrameBetweenRange) {
  auto r = QueryParser::Parse(
      "SELECT s FROM v WHERE action_class = 'left-turn' AND "
      "frame BETWEEN 100 AND 2000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().frame_begin, 100);
  EXPECT_EQ(r.value().frame_end, 2000);
}

TEST(QueryParserTest, RejectsEmptyFrameRange) {
  EXPECT_FALSE(QueryParser::Parse("SELECT s FROM v WHERE action_class = "
                                  "'left-turn' AND frame BETWEEN 50 AND 50")
                   .ok());
}

TEST(QueryParserTest, LimitClause) {
  auto r = QueryParser::Parse(
      "SELECT s FROM v WHERE action_class = 'left-turn' LIMIT 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().limit, 5);
  EXPECT_FALSE(r.value().explain_only);
}

TEST(QueryParserTest, RejectsFractionalLimit) {
  EXPECT_FALSE(
      QueryParser::Parse(
          "SELECT s FROM v WHERE action_class = 'left-turn' LIMIT 2.5")
          .ok());
}

TEST(QueryParserTest, ExplainPrefix) {
  auto r = QueryParser::Parse(
      "EXPLAIN SELECT s FROM UDF(video) WHERE action_class = 'cross-right' "
      "AND accuracy >= 85%");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().explain_only);
  EXPECT_EQ(r.value().primary_class(), video::ActionClass::kCrossRight);
}

TEST(QueryParserTest, MultiClassToStringRoundTrips) {
  ActionQuery q;
  q.action_classes = {video::ActionClass::kCrossRight,
                      video::ActionClass::kLeftTurn};
  q.accuracy_target = 0.85;
  q.limit = 3;
  auto r = QueryParser::Parse(q.ToString());
  ASSERT_TRUE(r.ok()) << q.ToString();
  EXPECT_EQ(r.value().action_classes, q.action_classes);
  EXPECT_EQ(r.value().limit, 3);
}

}  // namespace
}  // namespace zeus::core
