// Unit tests for zeus::apfg — R3dLite shapes/feature taps, segment labeling
// rule, sampler balance, feature cache behaviour, threshold overrides.

#include <gtest/gtest.h>

#include <cmath>

#include "apfg/apfg.h"
#include "apfg/feature_cache.h"
#include "apfg/frame2d.h"
#include "apfg/lite3d.h"
#include "apfg/r3d.h"
#include "apfg/segment_sampler.h"
#include "tensor/tensor_ops.h"
#include "common/rng.h"
#include "video/dataset.h"

namespace zeus::apfg {
namespace {

video::Video MakeLabeledVideo(int frames, int from, int to,
                              video::ActionClass cls) {
  video::Video v(frames, 12, 12);
  for (int f = from; f < to; ++f) v.SetLabel(f, cls);
  v.set_id(12345);
  return v;
}

TEST(R3dLiteTest, LogitsShape) {
  common::Rng rng(1);
  R3dLite::Options opts;
  R3dLite model(opts, &rng);
  tensor::Tensor x({2, 1, 4, 16, 16});
  tensor::Tensor y = model.Logits(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 2}));
}

TEST(R3dLiteTest, FeatureDimMatchesOptions) {
  common::Rng rng(2);
  R3dLite::Options opts;
  opts.feature_dim = 24;
  R3dLite model(opts, &rng);
  tensor::Tensor x({1, 1, 2, 8, 8});
  EXPECT_EQ(model.Features(x).shape(), (std::vector<int>{1, 24}));
}

TEST(R3dLiteTest, AcceptsVariableGeometry) {
  // Model reuse requires one network to process every configuration shape.
  common::Rng rng(3);
  R3dLite model(R3dLite::Options{}, &rng);
  for (auto [l, r] : std::vector<std::pair<int, int>>{
           {2, 15}, {8, 30}, {16, 20}, {4, 25}}) {
    tensor::Tensor x({1, 1, l, r, r});
    EXPECT_EQ(model.Logits(x, false).dim(1), 2) << l << "x" << r;
  }
}

TEST(R3dLiteTest, FeaturesAndLogitsConsistent) {
  common::Rng rng(4);
  R3dLite model(R3dLite::Options{}, &rng);
  tensor::Tensor x({1, 1, 4, 12, 12});
  tensor::FillGaussian(&x, &rng, 1.0f);
  auto both = model.FeaturesAndLogits(x);
  tensor::Tensor direct = model.Logits(x, false);
  EXPECT_LT(tensor::MaxAbsDiff(both.logits, direct), 1e-5f);
}

TEST(Frame2dTest, LogitsShape) {
  common::Rng rng(5);
  Frame2dNet net(Frame2dNet::Options{}, &rng);
  tensor::Tensor x({3, 1, 16, 16});
  EXPECT_EQ(net.Logits(x, false).shape(), (std::vector<int>{3, 2}));
}

TEST(Lite3dTest, LogitsShape) {
  common::Rng rng(6);
  LiteSegmentNet net(LiteSegmentNet::Options{}, &rng);
  tensor::Tensor x({2, 1, 8, 16, 16});
  EXPECT_EQ(net.Logits(x, false).shape(), (std::vector<int>{2, 2}));
}

TEST(SegmentLabelTest, IouThresholdRule) {
  auto v = MakeLabeledVideo(100, 10, 30, video::ActionClass::kCrossRight);
  std::vector<video::ActionClass> targets{video::ActionClass::kCrossRight};
  // Window [10, 30): fully covered -> positive.
  EXPECT_EQ(SegmentLabel(v, 10, 20, targets), 1);
  // Window [0, 40): covers 20/40 = 0.5, not > 0.5 -> negative.
  EXPECT_EQ(SegmentLabel(v, 0, 40, targets), 0);
  // Window [8, 28): 18/20 = 0.9 -> positive.
  EXPECT_EQ(SegmentLabel(v, 8, 20, targets), 1);
  // Disjoint window -> negative.
  EXPECT_EQ(SegmentLabel(v, 50, 20, targets), 0);
}

TEST(SegmentLabelTest, ZeroThresholdMeansAnyOverlap) {
  auto v = MakeLabeledVideo(100, 10, 30, video::ActionClass::kCrossRight);
  std::vector<video::ActionClass> targets{video::ActionClass::kCrossRight};
  EXPECT_EQ(SegmentLabel(v, 29, 20, targets, 0.0), 1);
  EXPECT_EQ(SegmentLabel(v, 30, 20, targets, 0.0), 0);
}

TEST(SegmentLabelTest, OtherClassDoesNotCount) {
  auto v = MakeLabeledVideo(100, 10, 30, video::ActionClass::kCrossLeft);
  std::vector<video::ActionClass> targets{video::ActionClass::kCrossRight};
  EXPECT_EQ(SegmentLabel(v, 10, 20, targets), 0);
}

TEST(SamplerTest, BalancedSampling) {
  auto v = MakeLabeledVideo(400, 100, 200, video::ActionClass::kCrossRight);
  std::vector<const video::Video*> vids{&v};
  std::vector<video::ActionClass> targets{video::ActionClass::kCrossRight};
  common::Rng rng(7);
  video::DecodeSpec spec{12, 8, 1};
  auto sample = SampleSegments(vids, targets, spec, &rng, 1.0);
  int pos = 0;
  for (auto& ex : sample) pos += ex.label;
  EXPECT_GT(pos, 0);
  // Negatives capped at roughly neg_per_pos * positives (+8 slack).
  EXPECT_LE(static_cast<int>(sample.size()) - pos, pos + 8);
}

TEST(SamplerTest, FrameSamplerLabelsMatchVideo) {
  auto v = MakeLabeledVideo(100, 20, 40, video::ActionClass::kLeftTurn);
  std::vector<const video::Video*> vids{&v};
  std::vector<video::ActionClass> targets{video::ActionClass::kLeftTurn};
  common::Rng rng(8);
  auto sample = SampleFrames(vids, targets, 1, &rng, 1.0);
  for (const auto& ex : sample) {
    bool is_action = ex.start_frame >= 20 && ex.start_frame < 40;
    EXPECT_EQ(ex.label, is_action ? 1 : 0);
  }
}

TEST(ApfgTest, ThresholdOverrides) {
  common::Rng rng(9);
  Apfg apfg(ApfgTrainOptions{}, /*model_reuse=*/true, &rng);
  video::DecodeSpec a{15, 8, 1}, b{30, 8, 1};
  apfg.set_decision_threshold(0.4f);
  EXPECT_FLOAT_EQ(apfg.ThresholdFor(a), 0.4f);
  apfg.SetSpecThreshold(a, 0.7f);
  EXPECT_FLOAT_EQ(apfg.ThresholdFor(a), 0.7f);
  EXPECT_FLOAT_EQ(apfg.ThresholdFor(b), 0.4f);  // other specs keep default
}

TEST(ApfgTest, ProcessEmitsFeatureAndProbability) {
  common::Rng rng(10);
  ApfgTrainOptions opts;
  Apfg apfg(opts, true, &rng);
  auto v = MakeLabeledVideo(60, 0, 0, video::ActionClass::kNone);
  video::DecodeSpec spec{12, 4, 1};
  auto out = apfg.Process(v, 0, spec);
  EXPECT_EQ(static_cast<int>(out.feature.size()), apfg.feature_dim());
  EXPECT_GE(out.action_prob, 0.0f);
  EXPECT_LE(out.action_prob, 1.0f);
}

TEST(FeatureCacheTest, HitsOnRepeat) {
  common::Rng rng(11);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  FeatureCache cache(&apfg);
  auto v = MakeLabeledVideo(60, 0, 0, video::ActionClass::kNone);
  video::DecodeSpec spec{12, 4, 1};
  cache.Get(v, 0, spec);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Get(v, 0, spec);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FeatureCacheTest, DistinctKeysForDistinctSpecs) {
  common::Rng rng(12);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  FeatureCache cache(&apfg);
  auto v = MakeLabeledVideo(60, 0, 0, video::ActionClass::kNone);
  cache.Get(v, 0, video::DecodeSpec{12, 4, 1});
  cache.Get(v, 0, video::DecodeSpec{12, 4, 2});
  cache.Get(v, 4, video::DecodeSpec{12, 4, 1});
  EXPECT_EQ(cache.size(), 3u);
}

TEST(FeatureCacheTest, CachedOutputIdenticalToDirect) {
  common::Rng rng(13);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  FeatureCache cache(&apfg);
  auto v = MakeLabeledVideo(60, 0, 0, video::ActionClass::kNone);
  video::DecodeSpec spec{12, 4, 1};
  auto direct = apfg.Process(v, 8, spec);
  const auto cached = cache.Get(v, 8, spec);
  EXPECT_LT(tensor::MaxAbsDiff(direct.feature, cached->feature), 1e-6f);
  EXPECT_EQ(direct.prediction, cached->prediction);
}

TEST(FeatureCacheTest, PrecomputePopulatesAlignedStarts) {
  common::Rng rng(14);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  FeatureCache cache(&apfg);
  auto v = MakeLabeledVideo(40, 0, 0, video::ActionClass::kNone);
  cache.Precompute(v, video::DecodeSpec{12, 2, 1}, /*alignment=*/10);
  EXPECT_EQ(cache.size(), 4u);  // starts 0, 10, 20, 30
}

TEST(FeatureCacheTest, WindowAwareKeysRecomputeOnlyClampedTail) {
  // The stream contract: growing a video must invalidate exactly the
  // segments whose decode was clamped at the old video end — interior
  // segments reuse their cached features, so an appended window only pays
  // extraction past the previous high-water mark.
  common::Rng rng(15);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  FeatureCache cache(&apfg);
  video::DecodeSpec spec{12, 4, 2};  // covers 8 source frames
  auto v = MakeLabeledVideo(40, 0, 0, video::ActionClass::kNone);
  // Warm starts 0..36 (interior: 0..32; start 36 clamps: only 4 avail).
  for (int start = 0; start < 40; start += 4) cache.Get(v, start, spec);
  const auto warm_misses = cache.misses();

  // Grow the video by 16 frames (content of old frames unchanged).
  video::Video tail(16, 12, 12);
  v.Append(tail);

  // Interior segments hit; the previously clamped tail (start 36, now 8
  // avail) and brand-new starts miss.
  for (int start = 0; start < 56; start += 4) cache.Get(v, start, spec);
  EXPECT_EQ(cache.hits(), 9u);                    // starts 0..32
  EXPECT_EQ(cache.misses(), warm_misses + 5u);    // 36 (re-clamped), 40..52
}

TEST(FeatureCacheTest, LruEvictsAndCounts) {
  common::Rng rng(17);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  FeatureCache cache(&apfg, /*max_entries=*/3);
  auto v = MakeLabeledVideo(80, 0, 0, video::ActionClass::kNone);
  video::DecodeSpec spec{12, 2, 1};
  cache.Get(v, 0, spec);
  cache.Get(v, 10, spec);
  cache.Get(v, 20, spec);
  cache.Get(v, 0, spec);  // refresh 0 -> LRU order (0, 20, 10)
  auto held = cache.Get(v, 10, spec);  // refresh 10 -> (10, 0, 20)
  cache.Get(v, 30, spec);              // evicts 20
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  const auto misses = cache.misses();
  cache.Get(v, 0, spec);  // survived
  cache.Get(v, 10, spec);
  EXPECT_EQ(cache.misses(), misses);
  cache.Get(v, 20, spec);  // was evicted: recompute
  EXPECT_EQ(cache.misses(), misses + 1);
  // A held value stays valid across evictions (shared ownership).
  EXPECT_GT(held->feature.size(), 0u);

  // Tightening the bound evicts immediately.
  cache.set_max_entries(1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FeatureCacheTest, InvalidateBeforeDropsOnlyPassedSegments) {
  common::Rng rng(18);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  FeatureCache cache(&apfg);
  auto v = MakeLabeledVideo(100, 0, 0, video::ActionClass::kNone);
  video::DecodeSpec spec{12, 4, 1};  // covers 4 source frames
  for (int start = 0; start < 100; start += 4) cache.Get(v, start, spec);
  EXPECT_EQ(cache.size(), 25u);
  // Retention horizon at frame 40: segments [0,4) .. [36,40) go.
  EXPECT_EQ(cache.InvalidateBefore(40), 10u);
  EXPECT_EQ(cache.size(), 15u);
  EXPECT_EQ(cache.evictions(), 10u);
  const auto misses = cache.misses();
  cache.Get(v, 40, spec);  // at the horizon: retained
  EXPECT_EQ(cache.misses(), misses);
  cache.Get(v, 36, spec);  // behind the horizon: recompute
  EXPECT_EQ(cache.misses(), misses + 1);
}

// End-to-end int8 inference: enabling the quantized path must keep action
// probabilities within the advertised tolerance of fp32, stay deterministic
// on repeat, and disabling must restore fp32 bit-exactly.
TEST(ApfgInt8Test, ScoresWithinToleranceOfFp32) {
  common::Rng rng(16);
  Apfg apfg(ApfgTrainOptions{}, /*model_reuse=*/true, &rng);
  auto v = MakeLabeledVideo(60, 10, 30, video::ActionClass::kCrossRight);
  video::DecodeSpec spec{12, 4, 1};

  EXPECT_FALSE(apfg.int8_inference_enabled());
  auto fp32_a = apfg.Process(v, 0, spec);
  auto fp32_b = apfg.Process(v, 8, spec);

  apfg.EnableInt8Inference();
  EXPECT_TRUE(apfg.int8_inference_enabled());
  // First call runs the lazy fp32-vs-int8 validation; whichever way it
  // decides (int8 active or fp32 fallback), scores stay within tolerance.
  auto int8_a = apfg.Process(v, 0, spec);
  auto int8_b = apfg.Process(v, 8, spec);
  EXPECT_LE(std::fabs(int8_a.action_prob - fp32_a.action_prob),
            Apfg::kInt8ScoreTolerance);
  EXPECT_LE(std::fabs(int8_b.action_prob - fp32_b.action_prob),
            Apfg::kInt8ScoreTolerance);
  EXPECT_EQ(int8_a.feature.shape(), fp32_a.feature.shape());

  // Steady-state int8 inference is deterministic.
  auto repeat = apfg.Process(v, 0, spec);
  EXPECT_EQ(tensor::MaxAbsDiff(repeat.feature, int8_a.feature), 0.0f);
  EXPECT_EQ(repeat.action_prob, int8_a.action_prob);

  // Disabling restores the fp32 path bit-exactly.
  apfg.EnableInt8Inference(false);
  EXPECT_FALSE(apfg.int8_inference_enabled());
  auto back = apfg.Process(v, 0, spec);
  EXPECT_EQ(tensor::MaxAbsDiff(back.feature, fp32_a.feature), 0.0f);
  EXPECT_EQ(back.action_prob, fp32_a.action_prob);
}

// Batched int8 inference agrees with fp32 row-for-row (the per-model
// validation compares exactly these action probabilities).
TEST(ApfgInt8Test, BatchScoresTrackFp32RowForRow) {
  common::Rng rng(17);
  Apfg apfg(ApfgTrainOptions{}, true, &rng);
  video::DecodeSpec spec{12, 4, 1};
  common::Rng data_rng(18);
  tensor::Tensor batch({4, 1, 4, 12, 12});
  tensor::FillGaussian(&batch, &data_rng, 1.0f);

  auto fp32 = apfg.ProcessBatch(batch, spec);
  apfg.EnableInt8Inference();
  auto int8 = apfg.ProcessBatch(batch, spec);
  ASSERT_EQ(int8.size(), fp32.size());
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_LE(std::fabs(int8[i].action_prob - fp32[i].action_prob),
              Apfg::kInt8ScoreTolerance)
        << "row " << i;
  }
}

TEST(ApfgTrainingTest, LearnsSeparableToyTask) {
  // A tiny dataset where action segments carry a checkerboard texture and
  // non-action segments are flat: training must reach high accuracy
  // quickly. (The cue must be textural, not plain brightness — the decoder
  // standardizes each segment, which removes global brightness on purpose.)
  common::Rng rng(15);
  std::vector<video::Video> storage;
  for (int i = 0; i < 4; ++i) {
    video::Video v(120, 12, 12);
    for (int f = 0; f < 120; ++f) {
      float* px = v.FrameData(f);
      for (int p = 0; p < 144; ++p) px[p] = 0.4f;
    }
    for (int f = 40; f < 80; ++f) {
      v.SetLabel(f, video::ActionClass::kCrossRight);
      float* px = v.FrameData(f);
      for (int y = 0; y < 12; ++y) {
        for (int x = 0; x < 12; ++x) {
          px[y * 12 + x] = ((x + y) % 2 == 0) ? 0.8f : 0.2f;
        }
      }
    }
    v.set_id(100 + i);
    storage.push_back(std::move(v));
  }
  std::vector<const video::Video*> vids;
  for (auto& v : storage) vids.push_back(&v);
  ApfgTrainOptions opts;
  opts.epochs = 6;
  Apfg apfg(opts, true, &rng);
  ApfgTrainStats stats;
  video::DecodeSpec best{12, 8, 1};
  ASSERT_TRUE(apfg.Train(vids, {video::ActionClass::kCrossRight}, best,
                         {best}, &stats)
                  .ok());
  EXPECT_GT(stats.train_accuracy, 0.9f);
  EXPECT_TRUE(apfg.trained());
}

}  // namespace
}  // namespace zeus::apfg
