// Threadless tests for the self-observation layer and the autoscaling
// policy: HistogramStats bucket/percentile math, MetricsRegistry counter
// and snapshot behavior, GroupStats aggregation + JSON shape, and
// Autoscaler::Decide table tests (scale-up trigger, hysteresis band,
// cooldown, sustain, min/max clamps). The policy is a pure function of
// (signal, config, tick, state) — every test here is deterministic with no
// engine, no clock and no threads. The live autoscaler (policy thread
// driving a real EngineGroup) is exercised in engine_group_test.cc.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/autoscaler.h"
#include "engine/metrics.h"

namespace zeus {
namespace {

using engine::Autoscaler;
using engine::GroupStats;
using engine::HistogramStats;
using engine::MetricsRegistry;
using engine::RunOutcome;
using engine::ShardStats;

// ---- HistogramStats --------------------------------------------------------

TEST(HistogramStatsTest, PercentilesReportBucketUpperBounds) {
  MetricsRegistry reg;
  // 90 fast samples (~1ms) and 10 slow ones (~1s).
  for (int i = 0; i < 90; ++i) reg.RecordQueueWait("ds", 0.001);
  for (int i = 0; i < 10; ++i) reg.RecordQueueWait("ds", 1.0);
  const HistogramStats h = reg.Snapshot().queue_wait;
  EXPECT_EQ(h.count, 100);
  // 1ms falls in the bucket with upper bound 2^10us = 1.024ms; 1s in the
  // bucket bounded by 2^20us ~ 1.049s. The percentile is the upper bound
  // of the bucket holding the ranked sample — an over-, never
  // under-estimate.
  EXPECT_DOUBLE_EQ(h.p50(), HistogramStats::BucketBound(10));
  EXPECT_DOUBLE_EQ(h.p95(), HistogramStats::BucketBound(20));
  EXPECT_DOUBLE_EQ(h.p99(), HistogramStats::BucketBound(20));
  EXPECT_GE(h.p50(), 0.001);
  EXPECT_GE(h.p95(), 1.0);
  EXPECT_NEAR(h.mean_seconds(), (90 * 0.001 + 10 * 1.0) / 100.0, 1e-3);
}

TEST(HistogramStatsTest, EmptyHistogramReportsZero) {
  HistogramStats h;
  EXPECT_EQ(h.count, 0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 0.0);
}

TEST(HistogramStatsTest, MergeIsExactBucketwiseAddition) {
  MetricsRegistry a;
  MetricsRegistry b;
  for (int i = 0; i < 10; ++i) a.RecordQueueWait("x", 0.001);
  for (int i = 0; i < 10; ++i) b.RecordQueueWait("x", 4.0);
  HistogramStats ha = a.Snapshot().queue_wait;
  const HistogramStats hb = b.Snapshot().queue_wait;
  ha.Merge(hb);
  EXPECT_EQ(ha.count, 20);
  // Exactly half the merged samples are fast, so p50 lands on the fast
  // bucket and p95 on the slow one — aggregation across shards keeps
  // percentiles exact, not averaged.
  EXPECT_DOUBLE_EQ(ha.p50(), HistogramStats::BucketBound(10));
  EXPECT_GE(ha.p95(), 4.0);
}

TEST(HistogramStatsTest, DeltaIsolatesTheWindowSinceAnEarlierSnapshot) {
  MetricsRegistry reg;
  for (int i = 0; i < 50; ++i) reg.RecordQueueWait("ds", 60.0);  // overload
  const HistogramStats before = reg.Snapshot().queue_wait;
  for (int i = 0; i < 5; ++i) reg.RecordQueueWait("ds", 0.001);  // calm now
  const HistogramStats after = reg.Snapshot().queue_wait;

  // Lifetime p95 is still pinned by the old overload...
  EXPECT_GE(after.p95(), 60.0);
  // ...but the window since `before` sees only the calm samples.
  const HistogramStats window = after.Delta(before);
  EXPECT_EQ(window.count, 5);
  EXPECT_LT(window.p95(), 0.01);
  // An empty window is empty, not negative.
  EXPECT_EQ(after.Delta(after).count, 0);
}

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, CountersTrackOutcomesPerDataset) {
  MetricsRegistry reg;
  reg.RecordSubmitted("a", 1);
  reg.RecordSubmitted("a", 2);
  reg.RecordSubmitted("b", 3);
  reg.RecordQueueWait("a", 0.01);
  reg.RecordRun("a", 0.5, RunOutcome::kDone);
  reg.RecordRun("a", 0.5, RunOutcome::kCancelled);
  reg.RecordRun("b", 0.1, RunOutcome::kFailed);
  reg.RecordRejected("b");
  reg.RecordCancelledWhileQueued("b");
  reg.RecordDrain();

  const ShardStats s = reg.Snapshot();
  EXPECT_EQ(s.submitted, 3);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.cancelled, 2);  // one mid-run, one purged while queued
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.drains, 1);
  EXPECT_EQ(s.peak_queue_depth, 3);
  EXPECT_EQ(s.exec.count, 3);

  ASSERT_EQ(s.datasets.size(), 2u);
  const auto& a = s.datasets[0];
  const auto& b = s.datasets[1];
  ASSERT_EQ(a.dataset, "a");
  ASSERT_EQ(b.dataset, "b");
  EXPECT_EQ(a.submitted, 2);
  EXPECT_EQ(a.completed, 1);
  EXPECT_EQ(a.cancelled, 1);
  EXPECT_EQ(a.queue_wait.count, 1);
  EXPECT_EQ(b.submitted, 1);
  EXPECT_EQ(b.failed, 1);
  EXPECT_EQ(b.rejected, 1);
  EXPECT_EQ(b.cancelled, 1);
}

TEST(MetricsRegistryTest, PeakQueueDepthIsAHighWaterMark) {
  MetricsRegistry reg;
  reg.RecordSubmitted("a", 5);
  reg.RecordSubmitted("a", 2);  // depth went down; peak must not
  EXPECT_EQ(reg.peak_queue_depth(), 5);
}

// ---- GroupStats ------------------------------------------------------------

TEST(GroupStatsTest, AbsorbAggregatesExactly) {
  MetricsRegistry r0;
  MetricsRegistry r1;
  r0.RecordSubmitted("a", 4);
  r0.RecordRun("a", 0.001, RunOutcome::kDone);
  r1.RecordSubmitted("b", 7);
  r1.RecordRun("b", 2.0, RunOutcome::kDone);

  GroupStats g;
  g.num_shards = 2;
  ShardStats s0 = r0.Snapshot();
  s0.shard = 0;
  s0.planner_runs = 1;
  ShardStats s1 = r1.Snapshot();
  s1.shard = 1;
  s1.disk_loads = 2;
  g.Absorb(std::move(s0));
  g.Absorb(std::move(s1));

  EXPECT_EQ(g.submitted, 2);
  EXPECT_EQ(g.completed, 2);
  EXPECT_EQ(g.peak_queue_depth, 7);  // max over shards, not a sum
  EXPECT_EQ(g.planner_runs, 1);
  EXPECT_EQ(g.disk_loads, 2);
  EXPECT_EQ(g.exec.count, 2);
  ASSERT_EQ(g.shards.size(), 2u);
  EXPECT_EQ(g.shards[1].shard, 1);
}

TEST(GroupStatsTest, ToJsonCarriesTheSnapshotSchema) {
  MetricsRegistry reg;
  reg.RecordSubmitted("bdd", 1);
  reg.RecordQueueWait("bdd", 0.002);
  reg.RecordRun("bdd", 0.125, RunOutcome::kDone);
  GroupStats g;
  g.num_shards = 1;
  g.resizes = 2;
  g.Absorb(reg.Snapshot());

  const std::string json = g.ToJson();
  for (const char* key :
       {"\"num_shards\": 1", "\"resizes\": 2", "\"queue_wait\"", "\"exec\"",
        "\"p95\"", "\"shards\"", "\"dataset\": \"bdd\"", "\"completed\"",
        "\"peak_queue_depth\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
}

TEST(GroupStatsTest, ShardMergeFoldsHistoryAndDatasetsByName) {
  MetricsRegistry live;
  MetricsRegistry retired;
  live.RecordRun("a", 0.1, RunOutcome::kDone);
  retired.RecordRun("a", 0.1, RunOutcome::kDone);
  retired.RecordRun("b", 0.1, RunOutcome::kFailed);
  retired.RecordSubmitted("a", 9);

  ShardStats kept = live.Snapshot();
  kept.Merge(retired.Snapshot());
  EXPECT_EQ(kept.completed, 2);
  EXPECT_EQ(kept.failed, 1);
  EXPECT_EQ(kept.submitted, 1);
  EXPECT_EQ(kept.peak_queue_depth, 9);
  EXPECT_EQ(kept.exec.count, 3);
  ASSERT_EQ(kept.datasets.size(), 2u);  // "a" merged, "b" appended
  EXPECT_EQ(kept.datasets[0].dataset, "a");
  EXPECT_EQ(kept.datasets[0].completed, 2);
}

TEST(GroupStatsTest, ToJsonEscapesDatasetNames) {
  MetricsRegistry reg;
  reg.RecordSubmitted("we\"ird\\name", 1);
  GroupStats g;
  g.num_shards = 1;
  g.Absorb(reg.Snapshot());
  const std::string json = g.ToJson();
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos) << json;
  EXPECT_EQ(json.find("we\"ird"), std::string::npos) << json;
}

// ---- Autoscaler::Decide ----------------------------------------------------

Autoscaler::Config TestConfig() {
  Autoscaler::Config cfg;
  cfg.enabled = true;
  cfg.min_shards = 1;
  cfg.max_shards = 4;
  cfg.up_queue_per_shard = 4.0;
  cfg.up_p95_queue_wait_seconds = 10.0;
  cfg.down_queue_total = 0.0;
  cfg.sustain_samples = 3;
  cfg.cooldown_samples = 5;
  return cfg;
}

Autoscaler::Signal Busy(int shards, long queued, long active = 1,
                        double p95 = 0.0) {
  Autoscaler::Signal s;
  s.num_shards = shards;
  s.queue_depth = queued;
  s.active = active;
  s.p95_queue_wait_seconds = p95;
  return s;
}

Autoscaler::Signal Idle(int shards) { return Busy(shards, 0, 0); }

TEST(AutoscalerDecideTest, SustainedBacklogScalesUpExactlyAtSustain) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  long tick = 0;
  // Backlog of 8 on 1 shard (threshold 4/shard): two samples hold, the
  // third acts.
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    const auto d = Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state);
    EXPECT_EQ(d.target_shards, 1) << "acted early at sample " << i;
  }
  const auto d = Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 2);
  EXPECT_STREQ(d.reason, "scale-up: sustained backlog");
}

TEST(AutoscalerDecideTest, P95QueueWaitAloneTriggersScaleUp) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  long tick = 0;
  // Queue depth under the threshold, but waits are terrible.
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    Autoscaler::Decide(Busy(2, 1, 1, 60.0), cfg, tick++, &state);
  }
  const auto d = Autoscaler::Decide(Busy(2, 1, 1, 60.0), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 3);
}

TEST(AutoscalerDecideTest, HysteresisBandHoldsForever) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  // Load between near-idle and backlogged (2 queued on 1 shard, threshold
  // 4): neither streak may ever accumulate.
  for (long tick = 0; tick < 100; ++tick) {
    const auto d = Autoscaler::Decide(Busy(1, 2), cfg, tick, &state);
    ASSERT_EQ(d.target_shards, 1) << "resized inside the band at " << tick;
    ASSERT_STREQ(d.reason, "hold");
  }
  EXPECT_EQ(state.up_streak, 0);
  EXPECT_EQ(state.down_streak, 0);
}

TEST(AutoscalerDecideTest, InterruptedBacklogNeverActs) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  long tick = 0;
  // sustain_samples is 3; a backlog that clears every 2 samples must
  // never scale.
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state).target_shards, 1);
    EXPECT_EQ(Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state).target_shards, 1);
    EXPECT_EQ(Autoscaler::Decide(Busy(1, 2), cfg, tick++, &state).target_shards, 1);
  }
}

TEST(AutoscalerDecideTest, CooldownBlocksBackToBackResizes) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  long tick = 0;
  // Drive to the first scale-up.
  for (int i = 0; i < cfg.sustain_samples; ++i) {
    Autoscaler::Decide(Busy(1, 100), cfg, tick++, &state);
  }
  // Backlog persists, but every sample inside the cooldown must hold.
  int held = 0;
  for (; tick - state.last_resize_tick < cfg.cooldown_samples;) {
    const auto d = Autoscaler::Decide(Busy(2, 100), cfg, tick++, &state);
    ASSERT_EQ(d.target_shards, 2);
    ASSERT_STREQ(d.reason, "hold: cooldown");
    ++held;
  }
  EXPECT_GT(held, 0);
  // The streak accumulated through the cooldown: the first post-cooldown
  // sample acts immediately.
  const auto d = Autoscaler::Decide(Busy(2, 100), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 3);
}

TEST(AutoscalerDecideTest, MaxShardsClampsScaleUp) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  long tick = 100;  // far from the initial cooldown sentinel
  for (int i = 0; i < cfg.sustain_samples; ++i) {
    Autoscaler::Decide(Busy(cfg.max_shards, 1000), cfg, tick++, &state);
  }
  const auto d =
      Autoscaler::Decide(Busy(cfg.max_shards, 1000), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, cfg.max_shards);
  EXPECT_STREQ(d.reason, "hold: at max_shards");
}

TEST(AutoscalerDecideTest, NearIdleShrinksAndMinShardsClampsIt) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  long tick = 0;
  // Idle at 3 shards: shrink one step at sustain.
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    EXPECT_EQ(Autoscaler::Decide(Idle(3), cfg, tick++, &state).target_shards,
              3);
  }
  EXPECT_EQ(Autoscaler::Decide(Idle(3), cfg, tick++, &state).target_shards, 2);
  // Ride out the cooldown, then the next sustained idle shrinks again.
  while (tick - state.last_resize_tick < cfg.cooldown_samples) {
    Autoscaler::Decide(Idle(2), cfg, tick++, &state);
  }
  for (int i = 0; i < cfg.sustain_samples; ++i) {
    Autoscaler::Decide(Idle(2), cfg, tick++, &state);
  }
  // (The loop above includes the acting sample; we are at 1 shard now.)
  while (tick - state.last_resize_tick < cfg.cooldown_samples) {
    Autoscaler::Decide(Idle(1), cfg, tick++, &state);
  }
  for (int i = 0; i < 10; ++i) {
    const auto d = Autoscaler::Decide(Idle(1), cfg, tick++, &state);
    ASSERT_EQ(d.target_shards, cfg.min_shards) << "shrank below min";
  }
}

TEST(AutoscalerDecideTest, RunningQueriesBlockScaleDown) {
  const auto cfg = TestConfig();
  Autoscaler::State state;
  // Queue empty but a query is executing: not near-idle, never shrink.
  for (long tick = 0; tick < 50; ++tick) {
    const auto d = Autoscaler::Decide(Busy(3, 0, /*active=*/1), cfg, tick,
                                      &state);
    ASSERT_EQ(d.target_shards, 3);
  }
}

TEST(AutoscalerDecideTest, SignalFromReadsTheAggregateSnapshot) {
  MetricsRegistry reg;
  reg.RecordSubmitted("a", 6);
  reg.RecordQueueWait("a", 8.0);
  GroupStats g;
  g.num_shards = 2;
  ShardStats s = reg.Snapshot();
  s.queue_depth = 6;
  s.active = 1;
  g.Absorb(std::move(s));

  const auto signal = Autoscaler::SignalFrom(g);
  EXPECT_EQ(signal.num_shards, 2);
  EXPECT_EQ(signal.queue_depth, 6);
  EXPECT_EQ(signal.active, 1);
  EXPECT_GE(signal.p95_queue_wait_seconds, 8.0);

  // The sampler's windowed form: with the previous snapshot equal to the
  // current one, nothing happened in the window — the old wait samples
  // cannot keep the p95 signal pinned.
  const auto windowed = Autoscaler::SignalFrom(g, &g.queue_wait);
  EXPECT_DOUBLE_EQ(windowed.p95_queue_wait_seconds, 0.0);
  EXPECT_EQ(windowed.queue_depth, 6);
}

// ---- Per-dataset (hot stream) triggers -------------------------------------

// A Busy() signal with the hottest-dataset fields filled in: the shape a
// live stream produces — one dataset's home-shard queue deep while the
// group average stays calm.
Autoscaler::Signal HotDataset(Autoscaler::Signal s, long depth, double p95,
                              const char* name = "stream") {
  s.max_dataset_queue_depth = depth;
  s.max_dataset_queue_wait_p95 = p95;
  s.hottest_dataset = name;
  return s;
}

TEST(AutoscalerDecideTest, HotDatasetScalesUpWhileGroupAverageIsCalm) {
  auto cfg = TestConfig();
  cfg.up_dataset_queue_depth = 6.0;
  Autoscaler::State state;
  long tick = 0;

  // 7 queued across 2 shards is under the 4/shard group trigger (8), but
  // all of them pile on one dataset — a live stream saturating its home
  // shard. The per-dataset rung fires after the usual sustain.
  const auto s = HotDataset(Busy(2, 7), 7, 0.0);
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    EXPECT_STREQ(Autoscaler::Decide(s, cfg, tick++, &state).reason, "hold");
  }
  const auto d = Autoscaler::Decide(s, cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 3);
  EXPECT_STREQ(d.reason, "scale-up: hot dataset");
}

TEST(AutoscalerDecideTest, DatasetP95TriggerFiresOnItsOwn) {
  auto cfg = TestConfig();
  cfg.up_dataset_queue_wait_p95_seconds = 5.0;
  Autoscaler::State state;
  long tick = 0;

  // Depth under both thresholds; only the hot dataset's p95 wait is over.
  const auto s = HotDataset(Busy(2, 2), 2, 6.0);
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    Autoscaler::Decide(s, cfg, tick++, &state);
  }
  const auto d = Autoscaler::Decide(s, cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 3);
  EXPECT_STREQ(d.reason, "scale-up: hot dataset");

  // An empty group queue gates the rung: per-dataset p95 is a lifetime
  // aggregate, so with nothing queued anywhere it must never fire.
  Autoscaler::State fresh;
  tick = 0;
  const auto stale = HotDataset(Busy(2, 0, /*active=*/1), 0, 6.0);
  for (int i = 0; i < cfg.sustain_samples * 2; ++i) {
    const auto h = Autoscaler::Decide(stale, cfg, tick++, &fresh);
    EXPECT_EQ(h.target_shards, 2);
  }
}

TEST(AutoscalerDecideTest, DisabledDatasetThresholdsNeverFire) {
  // TestConfig leaves both per-dataset thresholds at 0 (disabled): even an
  // absurdly hot dataset holds as long as the group-level signals do.
  const auto cfg = TestConfig();
  Autoscaler::State state;
  long tick = 0;
  const auto s = HotDataset(Busy(4, 8), 1000, 1e6);
  for (int i = 0; i < cfg.sustain_samples * 2; ++i) {
    EXPECT_STREQ(Autoscaler::Decide(s, cfg, tick++, &state).reason, "hold");
  }
}

TEST(AutoscalerDecideTest, GroupBacklogKeepsItsOwnReasonWhenBothFire) {
  // When the whole group is backlogged AND one dataset is hot, the group
  // condition names the decision — "hot dataset" is reserved for the case
  // only the per-dataset rung explains.
  auto cfg = TestConfig();
  cfg.up_dataset_queue_depth = 6.0;
  Autoscaler::State state;
  long tick = 0;
  const auto s = HotDataset(Busy(1, 10), 10, 0.0);
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    Autoscaler::Decide(s, cfg, tick++, &state);
  }
  const auto d = Autoscaler::Decide(s, cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 2);
  EXPECT_STREQ(d.reason, "scale-up: sustained backlog");
}

TEST(AutoscalerDecideTest, SignalFromDistillsTheHottestDataset) {
  // Two shards, three datasets: "b" has the deepest queue, "c" the worst
  // p95 wait. SignalFrom takes the max of each independently and names
  // the deepest-queue dataset.
  MetricsRegistry r1;
  r1.RecordSubmitted("a", 1);
  r1.RecordQueueWait("a", 0.5);
  r1.RecordSubmitted("b", 5);
  r1.RecordQueueWait("b", 2.0);
  MetricsRegistry r2;
  r2.RecordSubmitted("c", 2);
  r2.RecordQueueWait("c", 32.0);

  GroupStats g;
  g.num_shards = 2;
  ShardStats s1 = r1.Snapshot();
  ASSERT_EQ(s1.datasets.size(), 2u);
  s1.datasets[0].queue_depth = 1;  // a
  s1.datasets[1].queue_depth = 5;  // b
  s1.queue_depth = 6;
  ShardStats s2 = r2.Snapshot();
  ASSERT_EQ(s2.datasets.size(), 1u);
  s2.datasets[0].queue_depth = 2;  // c
  s2.queue_depth = 2;
  g.Absorb(std::move(s1));
  g.Absorb(std::move(s2));

  const auto signal = Autoscaler::SignalFrom(g);
  EXPECT_EQ(signal.max_dataset_queue_depth, 5);
  EXPECT_EQ(signal.hottest_dataset, "b");
  EXPECT_GE(signal.max_dataset_queue_wait_p95, 32.0);

  // The cheap snapshot (no per-dataset rows) leaves the fields zeroed —
  // exactly why Loop() only requests the rows when a threshold is set.
  GroupStats bare;
  bare.num_shards = 2;
  const auto none = Autoscaler::SignalFrom(bare);
  EXPECT_EQ(none.max_dataset_queue_depth, 0);
  EXPECT_TRUE(none.hottest_dataset.empty());
  EXPECT_DOUBLE_EQ(none.max_dataset_queue_wait_p95, 0.0);
}

// ---- The degradation ladder (docs/ACCURACY.md) -----------------------------

Autoscaler::Signal WithDegrade(Autoscaler::Signal s, int level) {
  s.degrade_level = level;
  return s;
}

TEST(AutoscalerDecideTest, AccuracyShedFiresBeforeScaleUp) {
  auto cfg = TestConfig();
  cfg.max_degrade_level = 2;
  Autoscaler::State state;
  long tick = 0;

  // Sustained backlog on 1 shard: the first action is a shed, not a
  // resize — the shard count never moves while the ladder has rungs.
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    const auto d = Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state);
    EXPECT_EQ(d.target_shards, 1);
    EXPECT_EQ(d.target_degrade, 0) << "shed early at sample " << i;
  }
  auto d = Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 1);
  EXPECT_EQ(d.target_degrade, 1);
  EXPECT_STREQ(d.reason, "degrade: sustained backlog");

  // Shed actions share the cooldown machinery with resizes.
  int held = 0;
  while (tick - state.last_resize_tick < cfg.cooldown_samples) {
    d = Autoscaler::Decide(WithDegrade(Busy(1, 8), 1), cfg, tick++, &state);
    ASSERT_STREQ(d.reason, "hold: cooldown");
    ASSERT_EQ(d.target_degrade, 1);
    ++held;
  }
  EXPECT_GT(held, 0);

  // Backlog persists: the second rung sheds again the instant the
  // cooldown expires (the streak accumulated through it)...
  d = Autoscaler::Decide(WithDegrade(Busy(1, 8), 1), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 1);
  EXPECT_EQ(d.target_degrade, 2);
  EXPECT_STREQ(d.reason, "degrade: sustained backlog");

  // ...and only with the shed ladder exhausted does the policy add a
  // shard, carrying the shed level across the resize untouched.
  while (tick - state.last_resize_tick < cfg.cooldown_samples) {
    Autoscaler::Decide(WithDegrade(Busy(1, 8), 2), cfg, tick++, &state);
  }
  d = Autoscaler::Decide(WithDegrade(Busy(1, 8), 2), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 2);
  EXPECT_EQ(d.target_degrade, 2);
  EXPECT_STREQ(d.reason, "scale-up: sustained backlog");
}

TEST(AutoscalerDecideTest, RestoreFiresBeforeScaleDown) {
  auto cfg = TestConfig();
  cfg.max_degrade_level = 2;
  Autoscaler::State state;
  long tick = 0;

  // Near-idle at 3 shards with the shed ladder fully engaged: recovery
  // gives accuracy back level by level before any capacity leaves.
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    EXPECT_EQ(
        Autoscaler::Decide(WithDegrade(Idle(3), 2), cfg, tick++, &state)
            .target_degrade,
        2);
  }
  auto d = Autoscaler::Decide(WithDegrade(Idle(3), 2), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 3);
  EXPECT_EQ(d.target_degrade, 1);
  EXPECT_STREQ(d.reason, "restore: near-idle");

  while (tick - state.last_resize_tick < cfg.cooldown_samples) {
    Autoscaler::Decide(WithDegrade(Idle(3), 1), cfg, tick++, &state);
  }
  d = Autoscaler::Decide(WithDegrade(Idle(3), 1), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 3);
  EXPECT_EQ(d.target_degrade, 0);
  EXPECT_STREQ(d.reason, "restore: near-idle");

  // Accuracy fully restored: now, and only now, the group shrinks.
  while (tick - state.last_resize_tick < cfg.cooldown_samples) {
    Autoscaler::Decide(Idle(3), cfg, tick++, &state);
  }
  d = Autoscaler::Decide(Idle(3), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 2);
  EXPECT_EQ(d.target_degrade, 0);
  EXPECT_STREQ(d.reason, "scale-down: near-idle");
}

TEST(AutoscalerDecideTest, DefaultDegradeLevelZeroIsTheLegacyScaleOnlyPolicy) {
  // max_degrade_level defaults to 0: the ladder collapses to the
  // pre-existing scale-only behavior — same actions, same reasons — and
  // target_degrade always echoes the signal.
  const auto cfg = TestConfig();
  ASSERT_EQ(cfg.max_degrade_level, 0);
  Autoscaler::State state;
  long tick = 0;
  for (int i = 0; i < cfg.sustain_samples - 1; ++i) {
    const auto d = Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state);
    EXPECT_EQ(d.target_shards, 1);
    EXPECT_EQ(d.target_degrade, 0);
  }
  const auto d = Autoscaler::Decide(Busy(1, 8), cfg, tick++, &state);
  EXPECT_EQ(d.target_shards, 2);
  EXPECT_EQ(d.target_degrade, 0);
  EXPECT_STREQ(d.reason, "scale-up: sustained backlog");
}

// The same sample sequence always yields the same resize sequence — the
// property that makes autoscaling reproducible in CI and in the nightly
// bench.
TEST(AutoscalerDecideTest, DeterministicAcrossRuns) {
  const auto cfg = TestConfig();
  std::vector<Autoscaler::Signal> trace;
  for (int i = 0; i < 10; ++i) trace.push_back(Busy(1, 8));
  for (int i = 0; i < 10; ++i) trace.push_back(Busy(2, 2));
  for (int i = 0; i < 20; ++i) trace.push_back(Idle(2));

  auto run = [&] {
    std::vector<int> targets;
    Autoscaler::State state;
    long tick = 0;
    for (const auto& s : trace) {
      targets.push_back(Autoscaler::Decide(s, cfg, tick++, &state).target_shards);
    }
    return targets;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace zeus
