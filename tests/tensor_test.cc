// Unit tests for zeus::tensor — shape math, elementwise ops, matmul against
// hand-computed values, reductions, serialization round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace zeus::tensor {
namespace {

TEST(TensorTest, ZeroInitializedWithShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, MultiDimIndexing) {
  Tensor t({2, 3});
  t.At({1, 2}) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  EXPECT_EQ(t.At({1, 2}), 5.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.At({2, 1}), 6.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::FromVector({1, -2, 3, 4});
  EXPECT_FLOAT_EQ(t.Sum(), 6.0f);
  EXPECT_FLOAT_EQ(t.Mean(), 1.5f);
  EXPECT_FLOAT_EQ(t.Min(), -2.0f);
  EXPECT_FLOAT_EQ(t.Max(), 4.0f);
  EXPECT_EQ(t.Argmax(), 3);
  EXPECT_NEAR(t.Norm(), std::sqrt(1 + 4 + 9 + 16.0f), 1e-5);
}

TEST(TensorTest, AddScaled) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = Tensor::FromVector({10, 20});
  a.AddScaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 12.0f);
}

TEST(TensorOpsTest, MatMulHandComputed) {
  // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(TensorOpsTest, MatMulTransposedVariantsAgree) {
  common::Rng rng(11);
  Tensor a({3, 4}), b({4, 5});
  FillGaussian(&a, &rng, 1.0f);
  FillGaussian(&b, &rng, 1.0f);
  Tensor ref = MatMul(a, b);
  // a @ b == a @ (b^T)^T
  Tensor bt = Transpose2d(b);
  EXPECT_LT(MaxAbsDiff(ref, MatMulTransposedB(a, bt)), 1e-4f);
  // a @ b == (a^T)^T @ b
  Tensor at = Transpose2d(a);
  EXPECT_LT(MaxAbsDiff(ref, MatMulTransposedA(at, b)), 1e-4f);
}

TEST(TensorOpsTest, ElementwiseOps) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({4, 5, 6});
  EXPECT_FLOAT_EQ(Add(a, b)[1], 7);
  EXPECT_FLOAT_EQ(Sub(a, b)[2], -3);
  EXPECT_FLOAT_EQ(Mul(a, b)[0], 4);
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Tensor logits = Tensor::FromData({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = SoftmaxRows(logits);
  for (int i = 0; i < 2; ++i) {
    float sum = p[3 * i] + p[3 * i + 1] + p[3 * i + 2];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
    EXPECT_GT(p[3 * i + 2], p[3 * i]);  // monotone in logits
  }
}

TEST(TensorOpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromData({1, 2}, {1000.0f, 1001.0f});
  Tensor p = SoftmaxRows(logits);
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5);
  EXPECT_GT(p[1], p[0]);
}

TEST(TensorOpsTest, StackShapes) {
  Tensor a({2, 3}, 1.0f), b({2, 3}, 2.0f);
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (std::vector<int>{2, 2, 3}));
  EXPECT_FLOAT_EQ(s[0], 1.0f);
  EXPECT_FLOAT_EQ(s[6], 2.0f);
}

TEST(TensorOpsTest, Concat1d) {
  Tensor c = Concat1d({Tensor::FromVector({1, 2}), Tensor::FromVector({3})});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FLOAT_EQ(c[2], 3);
}

TEST(SerializeTest, StreamRoundTrip) {
  common::Rng rng(9);
  Tensor t({2, 3, 4});
  FillGaussian(&t, &rng, 1.0f);
  std::stringstream ss;
  ASSERT_TRUE(WriteTensor(ss, t).ok());
  auto r = ReadTensor(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shape(), t.shape());
  EXPECT_EQ(MaxAbsDiff(r.value(), t), 0.0f);
}

TEST(SerializeTest, FileRoundTripMultipleTensors) {
  common::Rng rng(10);
  std::vector<Tensor> ts{Tensor({3}), Tensor({2, 2})};
  for (auto& t : ts) FillGaussian(&t, &rng, 1.0f);
  std::string path = testing::TempDir() + "/zeus_tensors.bin";
  ASSERT_TRUE(SaveTensors(path, ts).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(MaxAbsDiff(loaded.value()[1], ts[1]), 0.0f);
}

TEST(SerializeTest, CorruptMagicRejected) {
  std::stringstream ss;
  ss << "JUNKJUNKJUNK";
  auto r = ReadTensor(ss);
  EXPECT_FALSE(r.ok());
}

// Property sweep: reshape volume invariance across shapes.
class ShapeSweep : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(ShapeSweep, VolumeMatchesSize) {
  Tensor t(GetParam());
  EXPECT_EQ(t.size(), ShapeVolume(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(std::vector<int>{1},
                                           std::vector<int>{4, 5},
                                           std::vector<int>{2, 3, 4},
                                           std::vector<int>{1, 2, 3, 4},
                                           std::vector<int>{2, 1, 8, 5, 3}));

}  // namespace
}  // namespace zeus::tensor
