// Parity and determinism tests for the GEMM compute substrate: the blocked
// Sgemm kernel and the im2col/vol2col-lowered Conv2d/Conv3d/Linear paths are
// checked against the naive ComputePath::kReference loops over randomized
// shapes (odd sizes, stride, padding, 1-8 threads) within the tolerance
// documented in tensor/tensor_ops.h, and the parallel kernel is checked to
// be bit-identical across thread counts and repeated runs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace zeus {
namespace {

constexpr float kTol = 1e-4f;  // documented max-abs-diff budget

tensor::ComputeContext ReferenceCtx() {
  tensor::ComputeContext ctx;
  ctx.pool = nullptr;
  ctx.path = tensor::ComputePath::kReference;
  return ctx;
}

tensor::ComputeContext GemmCtx(common::ThreadPool* pool = nullptr) {
  tensor::ComputeContext ctx;
  ctx.pool = pool;
  ctx.path = tensor::ComputePath::kGemm;
  return ctx;
}

tensor::Tensor RandomTensor(std::vector<int> shape, common::Rng* rng) {
  tensor::Tensor t(std::move(shape));
  tensor::FillGaussian(&t, rng, 1.0f);
  return t;
}

TEST(SgemmTest, MatchesReferenceOverRandomOddShapes) {
  common::Rng rng(7);
  const int shapes[][3] = {{1, 1, 1},   {1, 10, 48},  {3, 5, 7},
                           {17, 31, 13}, {33, 129, 65}, {64, 64, 64},
                           {2, 255, 9},  {129, 3, 511}, {80, 100, 300}};
  tensor::ComputeContext ref = ReferenceCtx();
  tensor::ComputeContext gemm = GemmCtx();
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    tensor::Tensor a = RandomTensor({m, k}, &rng);
    tensor::Tensor b = RandomTensor({k, n}, &rng);
    EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMul(a, b, &gemm),
                                 tensor::MatMul(a, b, &ref)),
              kTol)
        << "MatMul " << m << "x" << k << "x" << n;
    tensor::Tensor bt = RandomTensor({n, k}, &rng);
    EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMulTransposedB(a, bt, &gemm),
                                 tensor::MatMulTransposedB(a, bt, &ref)),
              kTol)
        << "MatMulTransposedB " << m << "x" << k << "x" << n;
    tensor::Tensor at = RandomTensor({k, m}, &rng);
    EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMulTransposedA(at, b, &gemm),
                                 tensor::MatMulTransposedA(at, b, &ref)),
              kTol)
        << "MatMulTransposedA " << m << "x" << k << "x" << n;
  }
}

TEST(SgemmTest, HonorsAlphaBeta) {
  common::Rng rng(11);
  const int m = 13, n = 37, k = 29;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  tensor::Tensor c0 = RandomTensor({m, n}, &rng);
  tensor::ComputeContext gemm = GemmCtx();
  // c = 0.5 * a@b + 2 * c0
  tensor::Tensor c = c0;
  tensor::Sgemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f,
                c.data(), n, &gemm);
  tensor::Tensor ab = tensor::MatMul(a, b, &gemm);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], 0.5f * ab[i] + 2.0f * c0[i], kTol);
  }
}

// The parallel partition must not change results at all: each C element is
// accumulated in a thread-count-independent order.
TEST(SgemmTest, BitIdenticalAcrossThreadCounts) {
  common::Rng rng(13);
  const int m = 67, n = 341, k = 123;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  tensor::ComputeContext serial = GemmCtx();
  tensor::Tensor base = tensor::MatMul(a, b, &serial);
  for (int threads = 1; threads <= 8; threads *= 2) {
    common::ThreadPool pool(threads);
    tensor::ComputeContext par = GemmCtx(&pool);
    EXPECT_EQ(tensor::MaxAbsDiff(tensor::MatMul(a, b, &par), base), 0.0f)
        << threads << " threads";
  }
}

TEST(SgemmTest, DeterministicAcrossRepeatedMultithreadedRuns) {
  common::Rng rng(17);
  const int m = 48, n = 520, k = 77;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  common::ThreadPool pool(4);
  tensor::ComputeContext par = GemmCtx(&pool);
  tensor::Tensor first = tensor::MatMul(a, b, &par);
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(tensor::MaxAbsDiff(tensor::MatMul(a, b, &par), first), 0.0f);
  }
}

// Shared harness: forward + backward parity between the GEMM-lowered path
// and the kReference loop nest on one layer instance.
void ExpectLayerParity(nn::Layer* layer, const tensor::Tensor& x,
                       const tensor::ComputeContext& ref,
                       const tensor::ComputeContext& gemm) {
  layer->SetComputeContext(&ref);
  tensor::Tensor y_ref = layer->Forward(x, /*train=*/true);
  tensor::Tensor ones(y_ref.shape(), 1.0f);
  nn::ZeroGrads(layer->Parameters());
  tensor::Tensor dx_ref = layer->Backward(ones);
  std::vector<tensor::Tensor> grads_ref;
  for (nn::Parameter* p : layer->Parameters()) grads_ref.push_back(p->grad);

  layer->SetComputeContext(&gemm);
  tensor::Tensor y_gemm = layer->Forward(x, /*train=*/true);
  nn::ZeroGrads(layer->Parameters());
  tensor::Tensor dx_gemm = layer->Backward(ones);

  EXPECT_LT(tensor::MaxAbsDiff(y_gemm, y_ref), kTol) << "forward";
  EXPECT_LT(tensor::MaxAbsDiff(dx_gemm, dx_ref), kTol) << "grad input";
  auto params = layer->Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_LT(tensor::MaxAbsDiff(params[i]->grad, grads_ref[i]), kTol)
        << "param grad " << i;
  }
}

TEST(ConvParityTest, Conv2dGemmMatchesReference) {
  common::Rng rng(19);
  struct Case {
    int n, ci, co, h, w;
    nn::Conv2d::Options opts;
  };
  std::vector<Case> cases;
  cases.push_back({2, 3, 5, 13, 17, {}});                          // odd spatial
  cases.push_back({1, 1, 8, 15, 15, {{3, 3}, {2, 2}, {1, 1}}});    // stride 2
  cases.push_back({3, 4, 6, 9, 11, {{5, 3}, {1, 2}, {2, 0}}});     // mixed
  cases.push_back({1, 2, 4, 7, 7, {{1, 1}, {1, 1}, {0, 0}}});      // 1x1
  tensor::ComputeContext ref = ReferenceCtx();
  for (int threads : {0, 4}) {
    std::unique_ptr<common::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<common::ThreadPool>(threads);
    tensor::ComputeContext gemm = GemmCtx(pool.get());
    for (const Case& c : cases) {
      nn::Conv2d layer(c.ci, c.co, c.opts, &rng);
      tensor::Tensor x = RandomTensor({c.n, c.ci, c.h, c.w}, &rng);
      ExpectLayerParity(&layer, x, ref, gemm);
    }
  }
}

TEST(ConvParityTest, Conv3dGemmMatchesReference) {
  common::Rng rng(23);
  struct Case {
    int n, ci, co, l, h, w;
    nn::Conv3d::Options opts;
  };
  std::vector<Case> cases;
  cases.push_back({1, 1, 8, 8, 15, 15, {}});  // stem-like, odd spatial
  cases.push_back(
      {2, 2, 4, 7, 9, 11, {{3, 3, 3}, {2, 2, 2}, {1, 1, 1}}});  // stride 2
  cases.push_back(
      {1, 3, 5, 5, 6, 7, {{2, 3, 1}, {1, 2, 1}, {0, 1, 0}}});  // asymmetric
  tensor::ComputeContext ref = ReferenceCtx();
  for (int threads : {0, 4}) {
    std::unique_ptr<common::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<common::ThreadPool>(threads);
    tensor::ComputeContext gemm = GemmCtx(pool.get());
    for (const Case& c : cases) {
      nn::Conv3d layer(c.ci, c.co, c.opts, &rng);
      tensor::Tensor x = RandomTensor({c.n, c.ci, c.l, c.h, c.w}, &rng);
      ExpectLayerParity(&layer, x, ref, gemm);
    }
  }
}

TEST(ConvParityTest, LinearGemmMatchesReference) {
  common::Rng rng(29);
  tensor::ComputeContext ref = ReferenceCtx();
  common::ThreadPool pool(3);
  tensor::ComputeContext gemm = GemmCtx(&pool);
  for (int in : {5, 48, 129}) {
    for (int out : {1, 10, 33}) {
      nn::Linear layer(in, out, &rng);
      tensor::Tensor x = RandomTensor({7, in}, &rng);
      ExpectLayerParity(&layer, x, ref, gemm);
    }
  }
}

// The cached im2col/vol2col panels reused by Backward must change nothing:
// the panels are a pure function of the cached input, so gradients with the
// lowering cache on and off are bit-identical (not merely close).
template <typename Conv, typename MakeInput>
void ExpectLoweringCacheBitIdentical(typename Conv::Options opts,
                                     const MakeInput& make_input) {
  // Two layers with identical weights (same RNG seed), differing only in
  // whether Backward repacks or reuses the forward pass's panels.
  common::Rng rng_a(41), rng_b(41);
  typename Conv::Options cached_opts = opts;
  cached_opts.cache_lowering = true;
  typename Conv::Options repack_opts = opts;
  repack_opts.cache_lowering = false;
  Conv cached(3, 6, cached_opts, &rng_a);
  Conv repack(3, 6, repack_opts, &rng_b);

  common::Rng data_rng(43);
  tensor::Tensor x = make_input(&data_rng);
  tensor::ComputeContext gemm;  // serial kGemm

  for (Conv* layer : {&cached, &repack}) {
    layer->SetComputeContext(&gemm);
    nn::ZeroGrads(layer->Parameters());
  }
  tensor::Tensor y_cached = cached.Forward(x, /*train=*/true);
  tensor::Tensor y_repack = repack.Forward(x, /*train=*/true);
  EXPECT_EQ(tensor::MaxAbsDiff(y_cached, y_repack), 0.0f) << "forward";

  tensor::Tensor ones(y_cached.shape(), 1.0f);
  tensor::Tensor dx_cached = cached.Backward(ones);
  tensor::Tensor dx_repack = repack.Backward(ones);
  EXPECT_EQ(tensor::MaxAbsDiff(dx_cached, dx_repack), 0.0f) << "grad input";
  auto pa = cached.Parameters();
  auto pb = repack.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(tensor::MaxAbsDiff(pa[i]->grad, pb[i]->grad), 0.0f)
        << "param grad " << i;
  }
}

TEST(ConvLoweringCacheTest, Conv2dGradientsBitIdentical) {
  nn::Conv2d::Options opts;
  opts.kernel = {3, 3};
  opts.stride = {2, 1};
  opts.padding = {1, 0};
  ExpectLoweringCacheBitIdentical<nn::Conv2d>(opts, [](common::Rng* rng) {
    return RandomTensor({2, 3, 13, 11}, rng);
  });
}

TEST(ConvLoweringCacheTest, Conv3dGradientsBitIdentical) {
  nn::Conv3d::Options opts;
  opts.kernel = {3, 3, 3};
  opts.stride = {1, 2, 2};
  opts.padding = {1, 1, 1};
  ExpectLoweringCacheBitIdentical<nn::Conv3d>(opts, [](common::Rng* rng) {
    return RandomTensor({2, 3, 6, 12, 10}, rng);
  });
}

// Conv forward through the GEMM path must also be bit-identical across
// thread counts (the property the parallel BatchedExecutor relies on).
TEST(ConvParityTest, Conv3dForwardBitIdenticalAcrossThreadCounts) {
  common::Rng rng(31);
  nn::Conv3d::Options opts;
  nn::Conv3d layer(2, 16, opts, &rng);
  tensor::Tensor x = RandomTensor({1, 2, 8, 20, 20}, &rng);
  tensor::ComputeContext serial = GemmCtx();
  layer.SetComputeContext(&serial);
  tensor::Tensor base = layer.Forward(x, false);
  for (int threads : {2, 4, 8}) {
    common::ThreadPool pool(threads);
    tensor::ComputeContext par = GemmCtx(&pool);
    layer.SetComputeContext(&par);
    EXPECT_EQ(tensor::MaxAbsDiff(layer.Forward(x, false), base), 0.0f)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace zeus
