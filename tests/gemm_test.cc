// Parity and determinism tests for the GEMM compute substrate: the blocked
// Sgemm kernel and the im2col/vol2col-lowered Conv2d/Conv3d/Linear paths are
// checked against the naive ComputePath::kReference loops over randomized
// shapes (odd sizes, stride, padding, 1-8 threads) within the tolerance
// documented in tensor/tensor_ops.h, and the parallel kernel is checked to
// be bit-identical across thread counts and repeated runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/batch_split.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace zeus {
namespace {

constexpr float kTol = 1e-4f;  // documented max-abs-diff budget

tensor::ComputeContext ReferenceCtx() {
  tensor::ComputeContext ctx;
  ctx.pool = nullptr;
  ctx.path = tensor::ComputePath::kReference;
  return ctx;
}

tensor::ComputeContext GemmCtx(common::ThreadPool* pool = nullptr) {
  tensor::ComputeContext ctx;
  ctx.pool = pool;
  ctx.path = tensor::ComputePath::kGemm;
  return ctx;
}

tensor::Tensor RandomTensor(std::vector<int> shape, common::Rng* rng) {
  tensor::Tensor t(std::move(shape));
  tensor::FillGaussian(&t, rng, 1.0f);
  return t;
}

TEST(SgemmTest, MatchesReferenceOverRandomOddShapes) {
  common::Rng rng(7);
  const int shapes[][3] = {{1, 1, 1},   {1, 10, 48},  {3, 5, 7},
                           {17, 31, 13}, {33, 129, 65}, {64, 64, 64},
                           {2, 255, 9},  {129, 3, 511}, {80, 100, 300}};
  tensor::ComputeContext ref = ReferenceCtx();
  tensor::ComputeContext gemm = GemmCtx();
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    tensor::Tensor a = RandomTensor({m, k}, &rng);
    tensor::Tensor b = RandomTensor({k, n}, &rng);
    EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMul(a, b, &gemm),
                                 tensor::MatMul(a, b, &ref)),
              kTol)
        << "MatMul " << m << "x" << k << "x" << n;
    tensor::Tensor bt = RandomTensor({n, k}, &rng);
    EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMulTransposedB(a, bt, &gemm),
                                 tensor::MatMulTransposedB(a, bt, &ref)),
              kTol)
        << "MatMulTransposedB " << m << "x" << k << "x" << n;
    tensor::Tensor at = RandomTensor({k, m}, &rng);
    EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMulTransposedA(at, b, &gemm),
                                 tensor::MatMulTransposedA(at, b, &ref)),
              kTol)
        << "MatMulTransposedA " << m << "x" << k << "x" << n;
  }
}

TEST(SgemmTest, HonorsAlphaBeta) {
  common::Rng rng(11);
  const int m = 13, n = 37, k = 29;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  tensor::Tensor c0 = RandomTensor({m, n}, &rng);
  tensor::ComputeContext gemm = GemmCtx();
  // c = 0.5 * a@b + 2 * c0
  tensor::Tensor c = c0;
  tensor::Sgemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f,
                c.data(), n, &gemm);
  tensor::Tensor ab = tensor::MatMul(a, b, &gemm);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], 0.5f * ab[i] + 2.0f * c0[i], kTol);
  }
}

// The parallel partition must not change results at all: each C element is
// accumulated in a thread-count-independent order.
TEST(SgemmTest, BitIdenticalAcrossThreadCounts) {
  common::Rng rng(13);
  const int m = 67, n = 341, k = 123;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  tensor::ComputeContext serial = GemmCtx();
  tensor::Tensor base = tensor::MatMul(a, b, &serial);
  for (int threads = 1; threads <= 8; threads *= 2) {
    common::ThreadPool pool(threads);
    tensor::ComputeContext par = GemmCtx(&pool);
    EXPECT_EQ(tensor::MaxAbsDiff(tensor::MatMul(a, b, &par), base), 0.0f)
        << threads << " threads";
  }
}

TEST(SgemmTest, DeterministicAcrossRepeatedMultithreadedRuns) {
  common::Rng rng(17);
  const int m = 48, n = 520, k = 77;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  common::ThreadPool pool(4);
  tensor::ComputeContext par = GemmCtx(&pool);
  tensor::Tensor first = tensor::MatMul(a, b, &par);
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(tensor::MaxAbsDiff(tensor::MatMul(a, b, &par), first), 0.0f);
  }
}

// Shared harness: forward + backward parity between the GEMM-lowered path
// and the kReference loop nest on one layer instance.
void ExpectLayerParity(nn::Layer* layer, const tensor::Tensor& x,
                       const tensor::ComputeContext& ref,
                       const tensor::ComputeContext& gemm) {
  layer->SetComputeContext(&ref);
  tensor::Tensor y_ref = layer->Forward(x, /*train=*/true);
  tensor::Tensor ones(y_ref.shape(), 1.0f);
  nn::ZeroGrads(layer->Parameters());
  tensor::Tensor dx_ref = layer->Backward(ones);
  std::vector<tensor::Tensor> grads_ref;
  for (nn::Parameter* p : layer->Parameters()) grads_ref.push_back(p->grad);

  layer->SetComputeContext(&gemm);
  tensor::Tensor y_gemm = layer->Forward(x, /*train=*/true);
  nn::ZeroGrads(layer->Parameters());
  tensor::Tensor dx_gemm = layer->Backward(ones);

  EXPECT_LT(tensor::MaxAbsDiff(y_gemm, y_ref), kTol) << "forward";
  EXPECT_LT(tensor::MaxAbsDiff(dx_gemm, dx_ref), kTol) << "grad input";
  auto params = layer->Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_LT(tensor::MaxAbsDiff(params[i]->grad, grads_ref[i]), kTol)
        << "param grad " << i;
  }
}

TEST(ConvParityTest, Conv2dGemmMatchesReference) {
  common::Rng rng(19);
  struct Case {
    int n, ci, co, h, w;
    nn::Conv2d::Options opts;
  };
  std::vector<Case> cases;
  cases.push_back({2, 3, 5, 13, 17, {}});                          // odd spatial
  cases.push_back({1, 1, 8, 15, 15, {{3, 3}, {2, 2}, {1, 1}}});    // stride 2
  cases.push_back({3, 4, 6, 9, 11, {{5, 3}, {1, 2}, {2, 0}}});     // mixed
  cases.push_back({1, 2, 4, 7, 7, {{1, 1}, {1, 1}, {0, 0}}});      // 1x1
  tensor::ComputeContext ref = ReferenceCtx();
  for (int threads : {0, 4}) {
    std::unique_ptr<common::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<common::ThreadPool>(threads);
    tensor::ComputeContext gemm = GemmCtx(pool.get());
    for (const Case& c : cases) {
      nn::Conv2d layer(c.ci, c.co, c.opts, &rng);
      tensor::Tensor x = RandomTensor({c.n, c.ci, c.h, c.w}, &rng);
      ExpectLayerParity(&layer, x, ref, gemm);
    }
  }
}

TEST(ConvParityTest, Conv3dGemmMatchesReference) {
  common::Rng rng(23);
  struct Case {
    int n, ci, co, l, h, w;
    nn::Conv3d::Options opts;
  };
  std::vector<Case> cases;
  cases.push_back({1, 1, 8, 8, 15, 15, {}});  // stem-like, odd spatial
  cases.push_back(
      {2, 2, 4, 7, 9, 11, {{3, 3, 3}, {2, 2, 2}, {1, 1, 1}}});  // stride 2
  cases.push_back(
      {1, 3, 5, 5, 6, 7, {{2, 3, 1}, {1, 2, 1}, {0, 1, 0}}});  // asymmetric
  tensor::ComputeContext ref = ReferenceCtx();
  for (int threads : {0, 4}) {
    std::unique_ptr<common::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<common::ThreadPool>(threads);
    tensor::ComputeContext gemm = GemmCtx(pool.get());
    for (const Case& c : cases) {
      nn::Conv3d layer(c.ci, c.co, c.opts, &rng);
      tensor::Tensor x = RandomTensor({c.n, c.ci, c.l, c.h, c.w}, &rng);
      ExpectLayerParity(&layer, x, ref, gemm);
    }
  }
}

TEST(ConvParityTest, LinearGemmMatchesReference) {
  common::Rng rng(29);
  tensor::ComputeContext ref = ReferenceCtx();
  common::ThreadPool pool(3);
  tensor::ComputeContext gemm = GemmCtx(&pool);
  for (int in : {5, 48, 129}) {
    for (int out : {1, 10, 33}) {
      nn::Linear layer(in, out, &rng);
      tensor::Tensor x = RandomTensor({7, in}, &rng);
      ExpectLayerParity(&layer, x, ref, gemm);
    }
  }
}

// The cached im2col/vol2col panels reused by Backward must change nothing:
// the panels are a pure function of the cached input, so gradients with the
// lowering cache on and off are bit-identical (not merely close).
template <typename Conv, typename MakeInput>
void ExpectLoweringCacheBitIdentical(typename Conv::Options opts,
                                     const MakeInput& make_input) {
  // Two layers with identical weights (same RNG seed), differing only in
  // whether Backward repacks or reuses the forward pass's panels.
  common::Rng rng_a(41), rng_b(41);
  typename Conv::Options cached_opts = opts;
  cached_opts.cache_lowering = true;
  typename Conv::Options repack_opts = opts;
  repack_opts.cache_lowering = false;
  Conv cached(3, 6, cached_opts, &rng_a);
  Conv repack(3, 6, repack_opts, &rng_b);

  common::Rng data_rng(43);
  tensor::Tensor x = make_input(&data_rng);
  tensor::ComputeContext gemm;  // serial kGemm

  for (Conv* layer : {&cached, &repack}) {
    layer->SetComputeContext(&gemm);
    nn::ZeroGrads(layer->Parameters());
  }
  tensor::Tensor y_cached = cached.Forward(x, /*train=*/true);
  tensor::Tensor y_repack = repack.Forward(x, /*train=*/true);
  EXPECT_EQ(tensor::MaxAbsDiff(y_cached, y_repack), 0.0f) << "forward";

  tensor::Tensor ones(y_cached.shape(), 1.0f);
  tensor::Tensor dx_cached = cached.Backward(ones);
  tensor::Tensor dx_repack = repack.Backward(ones);
  EXPECT_EQ(tensor::MaxAbsDiff(dx_cached, dx_repack), 0.0f) << "grad input";
  auto pa = cached.Parameters();
  auto pb = repack.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(tensor::MaxAbsDiff(pa[i]->grad, pb[i]->grad), 0.0f)
        << "param grad " << i;
  }
}

TEST(ConvLoweringCacheTest, Conv2dGradientsBitIdentical) {
  nn::Conv2d::Options opts;
  opts.kernel = {3, 3};
  opts.stride = {2, 1};
  opts.padding = {1, 0};
  ExpectLoweringCacheBitIdentical<nn::Conv2d>(opts, [](common::Rng* rng) {
    return RandomTensor({2, 3, 13, 11}, rng);
  });
}

TEST(ConvLoweringCacheTest, Conv3dGradientsBitIdentical) {
  nn::Conv3d::Options opts;
  opts.kernel = {3, 3, 3};
  opts.stride = {1, 2, 2};
  opts.padding = {1, 1, 1};
  ExpectLoweringCacheBitIdentical<nn::Conv3d>(opts, [](common::Rng* rng) {
    return RandomTensor({2, 3, 6, 12, 10}, rng);
  });
}

// ---- ISA tier forcing ------------------------------------------------------

std::vector<tensor::GemmIsa> SupportedTiers() {
  std::vector<tensor::GemmIsa> tiers;
  for (tensor::GemmIsa t : {tensor::GemmIsa::kScalar, tensor::GemmIsa::kAvx2,
                            tensor::GemmIsa::kAvx512}) {
    if (tensor::ResolveGemmIsa(t) == t) tiers.push_back(t);
  }
  return tiers;  // kScalar always resolves to itself
}

// Every tier the CPU supports must agree with the reference loops on shapes
// that exercise the remainder-tile edges of both register tiles (4x16 and
// 6x32): m not a multiple of 4/6, n not a multiple of 16/32, tiny k.
TEST(GemmIsaTest, EveryTierMatchesReferenceOnRemainderShapes) {
  common::Rng rng(47);
  const int shapes[][3] = {{1, 1, 1},    {3, 17, 5},  {5, 33, 7},
                           {6, 32, 64},  {7, 31, 63}, {11, 50, 129},
                           {13, 95, 33}, {2, 255, 9}, {37, 96, 256}};
  tensor::ComputeContext ref = ReferenceCtx();
  for (tensor::GemmIsa tier : SupportedTiers()) {
    tensor::ComputeContext gemm = GemmCtx();
    gemm.isa = tier;
    for (const auto& s : shapes) {
      const int m = s[0], n = s[1], k = s[2];
      tensor::Tensor a = RandomTensor({m, k}, &rng);
      tensor::Tensor b = RandomTensor({k, n}, &rng);
      EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMul(a, b, &gemm),
                                   tensor::MatMul(a, b, &ref)),
                kTol)
          << tensor::GemmIsaName(tier) << " " << m << "x" << k << "x" << n;
      tensor::Tensor bt = RandomTensor({n, k}, &rng);
      EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMulTransposedB(a, bt, &gemm),
                                   tensor::MatMulTransposedB(a, bt, &ref)),
                kTol)
          << tensor::GemmIsaName(tier) << " trans_b " << m << "x" << k << "x"
          << n;
    }
  }
}

// The thread-count bit-identity contract holds per tier, not just for the
// auto-resolved one.
TEST(GemmIsaTest, EachTierBitIdenticalAcrossThreadCounts) {
  common::Rng rng(53);
  const int m = 37, n = 203, k = 91;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  for (tensor::GemmIsa tier : SupportedTiers()) {
    tensor::ComputeContext serial = GemmCtx();
    serial.isa = tier;
    tensor::Tensor base = tensor::MatMul(a, b, &serial);
    for (int threads : {2, 4}) {
      common::ThreadPool pool(threads);
      tensor::ComputeContext par = GemmCtx(&pool);
      par.isa = tier;
      EXPECT_EQ(tensor::MaxAbsDiff(tensor::MatMul(a, b, &par), base), 0.0f)
          << tensor::GemmIsaName(tier) << " " << threads << " threads";
    }
  }
}

// Forcing a tier the CPU lacks clamps to a supported one instead of crashing.
TEST(GemmIsaTest, UnsupportedForcedTierStillComputes) {
  common::Rng rng(59);
  tensor::Tensor a = RandomTensor({9, 31}, &rng);
  tensor::Tensor b = RandomTensor({31, 21}, &rng);
  tensor::ComputeContext ref = ReferenceCtx();
  tensor::ComputeContext gemm = GemmCtx();
  gemm.isa = tensor::GemmIsa::kAvx512;  // may or may not be supported here
  EXPECT_LT(tensor::MaxAbsDiff(tensor::MatMul(a, b, &gemm),
                               tensor::MatMul(a, b, &ref)),
            kTol);
}

TEST(GemmIsaTest, ParseComputePath) {
  tensor::ComputePath path = tensor::ComputePath::kGemm;
  tensor::GemmIsa isa = tensor::GemmIsa::kAuto;
  EXPECT_TRUE(tensor::ParseComputePath("reference", &path, &isa));
  EXPECT_EQ(path, tensor::ComputePath::kReference);
  EXPECT_EQ(isa, tensor::GemmIsa::kAuto);

  EXPECT_TRUE(tensor::ParseComputePath("scalar", &path, &isa));
  EXPECT_EQ(path, tensor::ComputePath::kGemm);
  EXPECT_EQ(isa, tensor::GemmIsa::kScalar);

  EXPECT_TRUE(tensor::ParseComputePath("avx2", &path, &isa));
  EXPECT_EQ(path, tensor::ComputePath::kGemm);
  EXPECT_EQ(isa, tensor::GemmIsa::kAvx2);

  EXPECT_TRUE(tensor::ParseComputePath("avx512", &path, &isa));
  EXPECT_EQ(path, tensor::ComputePath::kGemm);
  EXPECT_EQ(isa, tensor::GemmIsa::kAvx512);

  EXPECT_TRUE(tensor::ParseComputePath("int8", &path, &isa));
  EXPECT_EQ(path, tensor::ComputePath::kInt8);
  EXPECT_EQ(isa, tensor::GemmIsa::kAuto);

  // Unparseable values return false and leave the outputs untouched.
  path = tensor::ComputePath::kGemm;
  isa = tensor::GemmIsa::kAvx2;
  EXPECT_FALSE(tensor::ParseComputePath("turbo", &path, &isa));
  EXPECT_FALSE(tensor::ParseComputePath("", &path, &isa));
  EXPECT_FALSE(tensor::ParseComputePath(nullptr, &path, &isa));
  EXPECT_EQ(path, tensor::ComputePath::kGemm);
  EXPECT_EQ(isa, tensor::GemmIsa::kAvx2);
}

// ---- Int8 quantized path ---------------------------------------------------

float MaxAbs(const tensor::Tensor& t) {
  float m = 0.0f;
  for (size_t i = 0; i < t.size(); ++i) m = std::max(m, std::fabs(t[i]));
  return m;
}

tensor::ComputeContext Int8Ctx(common::ThreadPool* pool = nullptr) {
  tensor::ComputeContext ctx;
  ctx.pool = pool;
  ctx.path = tensor::ComputePath::kInt8;
  return ctx;
}

// Per-operand round-trip error is at most half a quantization step.
TEST(Int8GemmTest, QuantizeDequantizeWithinHalfStep) {
  common::Rng rng(61);
  tensor::Tensor t = RandomTensor({17, 53}, &rng);
  const float scale = tensor::QuantScale(t);
  ASSERT_GT(scale, 0.0f);
  EXPECT_LE(tensor::MaxAbsDiff(tensor::QuantizeDequantize(t), t),
            0.5f * scale + 1e-7f);

  tensor::Tensor zeros({4, 4});
  EXPECT_EQ(tensor::QuantScale(zeros), 0.0f);
  EXPECT_EQ(MaxAbs(tensor::QuantizeDequantize(zeros)), 0.0f);
}

// Int8 MatMul output stays within the a-priori error bound documented in
// tensor_ops.h: ~0.0079 * k * Amax * Bmax per element.
TEST(Int8GemmTest, MatMulWithinDocumentedErrorBound) {
  common::Rng rng(67);
  tensor::ComputeContext ref = ReferenceCtx();
  tensor::ComputeContext int8 = Int8Ctx();
  const int shapes[][3] = {{1, 1, 1},   {5, 33, 7},   {8, 96, 147},
                           {17, 50, 64}, {33, 129, 65}, {64, 64, 333}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    tensor::Tensor a = RandomTensor({m, k}, &rng);
    tensor::Tensor b = RandomTensor({k, n}, &rng);
    const float bound = 0.0079f * k * MaxAbs(a) * MaxAbs(b);
    EXPECT_LE(tensor::MaxAbsDiff(tensor::MatMul(a, b, &int8),
                                 tensor::MatMul(a, b, &ref)),
              bound)
        << "int8 MatMul " << m << "x" << k << "x" << n;
    tensor::Tensor bt = RandomTensor({n, k}, &rng);
    const float bound_t = 0.0079f * k * MaxAbs(a) * MaxAbs(bt);
    EXPECT_LE(tensor::MaxAbsDiff(tensor::MatMulTransposedB(a, bt, &int8),
                                 tensor::MatMulTransposedB(a, bt, &ref)),
              bound_t)
        << "int8 trans_b " << m << "x" << k << "x" << n;
  }
}

// Integer accumulation is associative, so int8 results are bit-identical
// across ISA tiers AND thread counts — a stronger contract than fp32's
// (which only promises bit-identity within one tier).
TEST(Int8GemmTest, BitIdenticalAcrossTiersAndThreadCounts) {
  common::Rng rng(71);
  const int m = 23, n = 167, k = 149;
  tensor::Tensor a = RandomTensor({m, k}, &rng);
  tensor::Tensor b = RandomTensor({k, n}, &rng);
  tensor::ComputeContext serial = Int8Ctx();
  serial.isa = tensor::GemmIsa::kScalar;
  tensor::Tensor base = tensor::MatMul(a, b, &serial);
  for (tensor::GemmIsa tier : SupportedTiers()) {
    for (int threads : {0, 2, 4}) {
      std::unique_ptr<common::ThreadPool> pool;
      if (threads > 0) pool = std::make_unique<common::ThreadPool>(threads);
      tensor::ComputeContext ctx = Int8Ctx(pool.get());
      ctx.isa = tier;
      EXPECT_EQ(tensor::MaxAbsDiff(tensor::MatMul(a, b, &ctx), base), 0.0f)
          << tensor::GemmIsaName(tier) << " " << threads << " threads";
    }
  }
}

// MatMulTransposedA is a backward-pass shape: kInt8 must silently fall back
// to fp32 there (gradients are never quantized), so it matches kGemm
// bit-exactly, not merely within the quantization bound.
TEST(Int8GemmTest, TransposedANeverQuantizes) {
  common::Rng rng(73);
  tensor::Tensor at = RandomTensor({37, 19}, &rng);
  tensor::Tensor b = RandomTensor({37, 41}, &rng);
  tensor::ComputeContext int8 = Int8Ctx();
  tensor::ComputeContext gemm = GemmCtx();
  EXPECT_EQ(tensor::MaxAbsDiff(tensor::MatMulTransposedA(at, b, &int8),
                               tensor::MatMulTransposedA(at, b, &gemm)),
            0.0f);
}

// ---- Batch-level parallelism -----------------------------------------------

// The outer/inner split policy is a pure function of shape and pool size.
TEST(BatchSplitTest, PolicyGuards) {
  const size_t big = size_t{1} << 20;   // below the outer-preferred knee
  const size_t huge = size_t{1} << 25;  // above it: few huge images go inner
  common::ThreadPool pool(4);
  tensor::ComputeContext ctx = GemmCtx(&pool);
  EXPECT_EQ(nn::BatchSplitTasks(ctx, 8, big), 4);   // n >= threads: outer
  EXPECT_EQ(nn::BatchSplitTasks(ctx, 2, big), 2);   // small images: outer
  EXPECT_EQ(nn::BatchSplitTasks(ctx, 2, huge), 1);  // few huge images: inner
  EXPECT_EQ(nn::BatchSplitTasks(ctx, 1, big), 1);   // single image
  EXPECT_EQ(nn::BatchSplitTasks(ctx, 8, 16), 1);    // trivial total work
  ctx.batch_split = false;
  EXPECT_EQ(nn::BatchSplitTasks(ctx, 8, big), 1);   // knob off
  ctx.batch_split = true;
  ctx.pool = nullptr;
  EXPECT_EQ(nn::BatchSplitTasks(ctx, 8, big), 1);   // serial context

  // Range partition covers [0, n) exactly, in order.
  int covered = 0;
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(nn::BatchSplitBegin(10, 3, t), covered);
    covered = nn::BatchSplitEnd(10, 3, t);
  }
  EXPECT_EQ(covered, 10);
}

// From inside a pool worker the policy must refuse to split (the nested
// ParallelFor would run inline and serialize everything anyway).
TEST(BatchSplitTest, NeverSplitsFromWorkerThread) {
  common::ThreadPool pool(4);
  tensor::ComputeContext ctx = GemmCtx(&pool);
  int tasks_inside = -1;
  common::ParallelFor(&pool, 1, [&](int) {
    tasks_inside = nn::BatchSplitTasks(ctx, 8, size_t{1} << 20);
  });
  EXPECT_EQ(tasks_inside, 1);
}

// Nested-ParallelFor regression: a batched conv whose outer split dispatches
// per-image work onto the pool — where each inner GEMM hits the
// ParallelFor-inline guard — must produce bit-identical results (forward,
// input grads, weight/bias grads) to the fully serial run and to the
// intra-GEMM-only run.
template <typename Conv>
void ExpectBatchSplitBitIdentical(typename Conv::Options opts, int ci, int co,
                                  const tensor::Tensor& x) {
  common::Rng rng(79);
  Conv layer(ci, co, opts, &rng);

  tensor::ComputeContext serial = GemmCtx();
  layer.SetComputeContext(&serial);
  tensor::Tensor y_base = layer.Forward(x, /*train=*/true);
  tensor::Tensor ones(y_base.shape(), 1.0f);
  nn::ZeroGrads(layer.Parameters());
  tensor::Tensor dx_base = layer.Backward(ones);
  std::vector<tensor::Tensor> grads_base;
  for (nn::Parameter* p : layer.Parameters()) grads_base.push_back(p->grad);

  for (bool batch_split : {true, false}) {
    for (int threads : {2, 4, 8}) {
      common::ThreadPool pool(threads);
      tensor::ComputeContext par = GemmCtx(&pool);
      par.batch_split = batch_split;
      layer.SetComputeContext(&par);
      const std::string what = std::string(batch_split ? "outer" : "inner") +
                               " split, " + std::to_string(threads) +
                               " threads";
      EXPECT_EQ(tensor::MaxAbsDiff(layer.Forward(x, /*train=*/true), y_base),
                0.0f)
          << what << " forward";
      nn::ZeroGrads(layer.Parameters());
      EXPECT_EQ(tensor::MaxAbsDiff(layer.Backward(ones), dx_base), 0.0f)
          << what << " grad input";
      auto params = layer.Parameters();
      for (size_t i = 0; i < params.size(); ++i) {
        EXPECT_EQ(tensor::MaxAbsDiff(params[i]->grad, grads_base[i]), 0.0f)
            << what << " param grad " << i;
      }
    }
  }
}

TEST(BatchSplitTest, Conv2dBatchedBitIdenticalVsSerial) {
  common::Rng rng(83);
  nn::Conv2d::Options opts;
  opts.kernel = {3, 3};
  opts.stride = {1, 2};
  opts.padding = {1, 1};
  ExpectBatchSplitBitIdentical<nn::Conv2d>(opts, 2, 5,
                                           RandomTensor({6, 2, 11, 13}, &rng));
}

TEST(BatchSplitTest, Conv3dBatchedBitIdenticalVsSerial) {
  common::Rng rng(89);
  nn::Conv3d::Options opts;
  opts.kernel = {3, 3, 3};
  opts.stride = {1, 2, 2};
  opts.padding = {1, 1, 1};
  ExpectBatchSplitBitIdentical<nn::Conv3d>(
      opts, 1, 6, RandomTensor({6, 1, 5, 12, 10}, &rng));
}

// Conv forward through the GEMM path must also be bit-identical across
// thread counts (the property the parallel BatchedExecutor relies on).
TEST(ConvParityTest, Conv3dForwardBitIdenticalAcrossThreadCounts) {
  common::Rng rng(31);
  nn::Conv3d::Options opts;
  nn::Conv3d layer(2, 16, opts, &rng);
  tensor::Tensor x = RandomTensor({1, 2, 8, 20, 20}, &rng);
  tensor::ComputeContext serial = GemmCtx();
  layer.SetComputeContext(&serial);
  tensor::Tensor base = layer.Forward(x, false);
  for (int threads : {2, 4, 8}) {
    common::ThreadPool pool(threads);
    tensor::ComputeContext par = GemmCtx(&pool);
    layer.SetComputeContext(&par);
    EXPECT_EQ(tensor::MaxAbsDiff(layer.Forward(x, false), base), 0.0f)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace zeus
