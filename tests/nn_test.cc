// Unit tests for zeus::nn — gradient checks of every layer against central
// differences, loss values/gradients, optimizer behaviour, serialization.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/gradcheck.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace zeus::nn {
namespace {

// Loss = sum of outputs; its gradient w.r.t. the output is all-ones. Every
// gradient check below uses this pair.
float SumLoss(const tensor::Tensor& y) { return y.Sum(); }
tensor::Tensor OnesLike(const tensor::Tensor& y) {
  return tensor::Tensor(y.shape(), 1.0f);
}

TEST(LinearTest, ForwardHandComputed) {
  common::Rng rng(1);
  Linear layer(2, 1, &rng);
  layer.weight().value = tensor::Tensor::FromData({1, 2}, {2.0f, 3.0f});
  layer.bias().value = tensor::Tensor::FromVector({1.0f});
  tensor::Tensor x = tensor::Tensor::FromData({1, 2}, {4.0f, 5.0f});
  tensor::Tensor y = layer.Forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2 * 4 + 3 * 5 + 1);
}

TEST(LinearTest, GradientsMatchFiniteDifferences) {
  common::Rng rng(2);
  Linear layer(5, 3, &rng);
  tensor::Tensor x({2, 5});
  tensor::FillGaussian(&x, &rng, 1.0f);
  auto in = CheckInputGradient(&layer, x, SumLoss, OnesLike);
  EXPECT_LT(in.max_rel_error, 2e-2f);
  auto par = CheckParameterGradient(&layer, x, SumLoss, OnesLike);
  EXPECT_LT(par.max_rel_error, 2e-2f);
}

TEST(Conv2dTest, OutputShape) {
  common::Rng rng(3);
  Conv2d::Options opts;
  opts.stride = {2, 2};
  Conv2d layer(1, 4, opts, &rng);
  tensor::Tensor x({2, 1, 8, 8});
  tensor::Tensor y = layer.Forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 4, 4, 4}));
}

TEST(Conv2dTest, GradientsMatchFiniteDifferences) {
  common::Rng rng(4);
  Conv2d::Options opts;
  opts.stride = {2, 2};
  Conv2d layer(2, 3, opts, &rng);
  tensor::Tensor x({1, 2, 6, 6});
  tensor::FillGaussian(&x, &rng, 1.0f);
  EXPECT_LT(CheckInputGradient(&layer, x, SumLoss, OnesLike).max_rel_error,
            2e-2f);
  EXPECT_LT(CheckParameterGradient(&layer, x, SumLoss, OnesLike).max_rel_error,
            2e-2f);
}

TEST(Conv3dTest, OutputShape) {
  common::Rng rng(5);
  Conv3d::Options opts;
  opts.stride = {1, 2, 2};
  Conv3d layer(1, 8, opts, &rng);
  tensor::Tensor x({1, 1, 4, 8, 8});
  tensor::Tensor y = layer.Forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 8, 4, 4, 4}));
}

TEST(Conv3dTest, GradientsMatchFiniteDifferences) {
  common::Rng rng(6);
  Conv3d::Options opts;
  opts.stride = {2, 2, 2};
  Conv3d layer(1, 2, opts, &rng);
  tensor::Tensor x({1, 1, 4, 6, 6});
  tensor::FillGaussian(&x, &rng, 1.0f);
  // float32 central differences over the large conv sums are noisy; the
  // bound is loose but still catches sign/indexing errors by two orders of
  // magnitude.
  EXPECT_LT(CheckInputGradient(&layer, x, SumLoss, OnesLike, 24, 3e-3f)
                .max_rel_error,
            8e-2f);
  EXPECT_LT(CheckParameterGradient(&layer, x, SumLoss, OnesLike, 24, 3e-3f)
                .max_rel_error,
            8e-2f);
}

TEST(Conv3dTest, HandlesMinimalTemporalExtent) {
  common::Rng rng(7);
  Conv3d::Options opts;
  opts.stride = {2, 2, 2};
  Conv3d layer(1, 2, opts, &rng);
  tensor::Tensor x({1, 1, 1, 4, 4});  // single-frame "segment"
  tensor::Tensor y = layer.Forward(x, false);
  EXPECT_EQ(y.dim(2), 1);
}

TEST(ReLUTest, ForwardAndGradMask) {
  ReLU relu;
  tensor::Tensor x = tensor::Tensor::FromVector({-1, 2, -3, 4});
  tensor::Tensor y = relu.Forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[1], 2);
  tensor::Tensor g = relu.Backward(tensor::Tensor({4}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 0);
  EXPECT_FLOAT_EQ(g[1], 1);
  EXPECT_FLOAT_EQ(g[3], 1);
}

TEST(TanhTest, GradientMatchesDerivative) {
  Tanh tanh_layer;
  tensor::Tensor x = tensor::Tensor::FromVector({0.5f});
  tensor::Tensor y = tanh_layer.Forward(x, true);
  tensor::Tensor g = tanh_layer.Backward(tensor::Tensor({1}, 1.0f));
  EXPECT_NEAR(g[0], 1.0f - y[0] * y[0], 1e-6);
}

TEST(GlobalAvgPoolTest, ForwardBackward) {
  GlobalAvgPool pool;
  tensor::Tensor x = tensor::Tensor::FromData({1, 2, 2, 2},
                                              {1, 2, 3, 4, 5, 6, 7, 8});
  tensor::Tensor y = pool.Forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
  tensor::Tensor g = pool.Backward(tensor::Tensor::FromData({1, 2}, {4, 8}));
  EXPECT_FLOAT_EQ(g[0], 1.0f);   // 4 / 4 spatial cells
  EXPECT_FLOAT_EQ(g[7], 2.0f);
}

TEST(MaxPool2dTest, ForwardRoutesGradToArgmax) {
  MaxPool2d pool(2);
  tensor::Tensor x = tensor::Tensor::FromData({1, 1, 2, 2}, {1, 5, 2, 3});
  tensor::Tensor y = pool.Forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  tensor::Tensor g = pool.Backward(tensor::Tensor({1, 1, 1, 1}, 2.0f));
  EXPECT_FLOAT_EQ(g[1], 2.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(DropoutTest, IdentityInEval) {
  common::Rng rng(8);
  Dropout drop(0.5f, &rng);
  tensor::Tensor x = tensor::Tensor::FromVector({1, 2, 3});
  tensor::Tensor y = drop.Forward(x, /*train=*/false);
  EXPECT_EQ(tensor::MaxAbsDiff(x, y), 0.0f);
}

TEST(DropoutTest, PreservesExpectationInTrain) {
  common::Rng rng(9);
  Dropout drop(0.3f, &rng);
  tensor::Tensor x({10000}, 1.0f);
  tensor::Tensor y = drop.Forward(x, true);
  EXPECT_NEAR(y.Mean(), 1.0f, 0.05f);
}

TEST(FlattenTest, RoundTrip) {
  Flatten flatten;
  tensor::Tensor x({2, 3, 4});
  tensor::Tensor y = flatten.Forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 12}));
  tensor::Tensor g = flatten.Backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(LossTest, CrossEntropyPerfectPrediction) {
  tensor::Tensor logits = tensor::Tensor::FromData({1, 2}, {-20.0f, 20.0f});
  auto res = SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(res.loss, 0.0f, 1e-4);
}

TEST(LossTest, CrossEntropyUniformIsLog2) {
  tensor::Tensor logits = tensor::Tensor::FromData({1, 2}, {0.0f, 0.0f});
  auto res = SoftmaxCrossEntropy(logits, {0});
  EXPECT_NEAR(res.loss, std::log(2.0f), 1e-5);
  // Gradient pushes the correct logit up, the other down, sums to zero.
  EXPECT_NEAR(res.grad[0] + res.grad[1], 0.0f, 1e-6);
  EXPECT_LT(res.grad[0], 0.0f);
}

TEST(LossTest, HuberQuadraticInside) {
  tensor::Tensor p = tensor::Tensor::FromVector({0.5f});
  tensor::Tensor t = tensor::Tensor::FromVector({0.0f});
  auto res = Huber(p, t);
  EXPECT_NEAR(res.loss, 0.5f * 0.25f, 1e-6);
  EXPECT_NEAR(res.grad[0], 0.5f, 1e-6);
}

TEST(LossTest, HuberLinearOutside) {
  tensor::Tensor p = tensor::Tensor::FromVector({3.0f});
  tensor::Tensor t = tensor::Tensor::FromVector({0.0f});
  auto res = Huber(p, t, 1.0f);
  EXPECT_NEAR(res.loss, 1.0f * (3.0f - 0.5f), 1e-5);
  EXPECT_NEAR(res.grad[0], 1.0f, 1e-6);  // clipped slope
}

TEST(LossTest, AccuracyCountsArgmaxMatches) {
  tensor::Tensor logits =
      tensor::Tensor::FromData({2, 2}, {1, 0, 0, 1});
  EXPECT_FLOAT_EQ(Accuracy(logits, {0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(Accuracy(logits, {1, 1}), 0.5f);
}

TEST(OptimizerTest, SgdStepsDownhill) {
  common::Rng rng(10);
  Linear layer(1, 1, &rng);
  Sgd sgd(layer.Parameters(), 0.1f, /*momentum=*/0.0f);
  // Minimize (w*1 + b)^2 toward 0 output.
  for (int i = 0; i < 50; ++i) {
    tensor::Tensor x({1, 1}, 1.0f);
    tensor::Tensor y = layer.Forward(x, true);
    layer.Backward(tensor::Tensor({1, 1}, 2.0f * y[0]));
    sgd.Step();
  }
  tensor::Tensor y = layer.Forward(tensor::Tensor({1, 1}, 1.0f), false);
  EXPECT_NEAR(y[0], 0.0f, 1e-3);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  common::Rng rng(11);
  Linear layer(1, 1, &rng);
  Adam adam(layer.Parameters(), 0.05f);
  for (int i = 0; i < 200; ++i) {
    tensor::Tensor x({1, 1}, 1.0f);
    tensor::Tensor y = layer.Forward(x, true);
    layer.Backward(tensor::Tensor({1, 1}, 2.0f * (y[0] - 3.0f)));
    adam.Step();
  }
  tensor::Tensor y = layer.Forward(tensor::Tensor({1, 1}, 1.0f), false);
  EXPECT_NEAR(y[0], 3.0f, 0.05f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  common::Rng rng(12);
  Linear layer(2, 2, &rng);
  auto params = layer.Parameters();
  for (auto* p : params) p->grad.Fill(10.0f);
  ClipGradNorm(params, 1.0f);
  double total = 0;
  for (auto* p : params)
    for (size_t i = 0; i < p->grad.size(); ++i)
      total += p->grad[i] * p->grad[i];
  EXPECT_NEAR(std::sqrt(total), 1.0, 1e-4);
}

TEST(SequentialTest, ComposesAndCollectsParams) {
  common::Rng rng(13);
  Sequential net;
  net.Emplace<Linear>(4, 8, &rng);
  net.Emplace<ReLU>();
  net.Emplace<Linear>(8, 2, &rng);
  EXPECT_EQ(net.Parameters().size(), 4u);
  tensor::Tensor x({3, 4});
  EXPECT_EQ(net.Forward(x, false).shape(), (std::vector<int>{3, 2}));
}

TEST(SequentialTest, SaveLoadRoundTrip) {
  common::Rng rng(14);
  Sequential a, b;
  a.Emplace<Linear>(3, 2, &rng);
  b.Emplace<Linear>(3, 2, &rng);
  std::string path = testing::TempDir() + "/zeus_net.bin";
  ASSERT_TRUE(a.SaveWeights(path).ok());
  ASSERT_TRUE(b.LoadWeights(path).ok());
  tensor::Tensor x({1, 3}, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(a.Forward(x, false), b.Forward(x, false)),
            0.0f);
}

TEST(SequentialTest, LoadRejectsWrongArchitecture) {
  common::Rng rng(15);
  Sequential a, b;
  a.Emplace<Linear>(3, 2, &rng);
  b.Emplace<Linear>(4, 2, &rng);
  std::string path = testing::TempDir() + "/zeus_net2.bin";
  ASSERT_TRUE(a.SaveWeights(path).ok());
  EXPECT_FALSE(b.LoadWeights(path).ok());
}

TEST(SequentialTest, PrefixSuffixComposeToFull) {
  common::Rng rng(16);
  Sequential net;
  net.Emplace<Linear>(4, 8, &rng);
  net.Emplace<ReLU>();
  net.Emplace<Linear>(8, 2, &rng);
  tensor::Tensor x({2, 4});
  tensor::FillGaussian(&x, &rng, 1.0f);
  tensor::Tensor full = net.Forward(x, false);
  tensor::Tensor mid = net.ForwardPrefix(x, 2, false);
  tensor::Tensor composed = net.ForwardSuffix(mid, 2, false);
  EXPECT_LT(tensor::MaxAbsDiff(full, composed), 1e-6f);
}

// Parameterized gradient sweep over conv3d geometries.
struct ConvCase {
  int ci, co, l, h, w;
  std::array<int, 3> stride;
};

class Conv3dSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv3dSweep, GradCheck) {
  const ConvCase& c = GetParam();
  common::Rng rng(17);
  Conv3d::Options opts;
  opts.stride = c.stride;
  Conv3d layer(c.ci, c.co, opts, &rng);
  tensor::Tensor x({1, c.ci, c.l, c.h, c.w});
  tensor::FillGaussian(&x, &rng, 1.0f);
  EXPECT_LT(CheckInputGradient(&layer, x, SumLoss, OnesLike, 12, 3e-3f)
                .max_rel_error,
            8e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv3dSweep,
    ::testing::Values(ConvCase{1, 2, 2, 4, 4, {1, 2, 2}},
                      ConvCase{2, 1, 4, 4, 4, {2, 2, 2}},
                      ConvCase{1, 3, 3, 5, 5, {1, 1, 1}},
                      ConvCase{3, 2, 2, 6, 4, {2, 2, 2}}));

}  // namespace
}  // namespace zeus::nn

// --- Learning-rate schedules ------------------------------------------

#include "nn/lr_schedule.h"

namespace zeus::nn {
namespace {

// A 1-parameter optimizer stub so schedules have something to drive.
struct LrProbe {
  Parameter param{std::vector<int>{1}};
  Sgd opt{{&param}, 0.1f, 0.0f};
};

TEST(LrScheduleTest, StepLrDecaysEveryPeriod) {
  LrProbe probe;
  StepLr schedule(&probe.opt, /*period=*/3, /*gamma=*/0.5f);
  std::vector<float> lrs;
  for (int i = 0; i < 7; ++i) {
    schedule.Step();
    lrs.push_back(probe.opt.learning_rate());
  }
  EXPECT_FLOAT_EQ(lrs[0], 0.1f);    // steps 1..2: no decay yet
  EXPECT_FLOAT_EQ(lrs[1], 0.1f);
  EXPECT_FLOAT_EQ(lrs[2], 0.05f);   // step 3: one decay
  EXPECT_FLOAT_EQ(lrs[5], 0.025f);  // step 6: two decays
  EXPECT_FLOAT_EQ(lrs[6], 0.025f);
}

TEST(LrScheduleTest, CosineAnnealsMonotonicallyToFloor) {
  LrProbe probe;
  CosineLr schedule(&probe.opt, /*total_steps=*/10, /*min_lr=*/0.01f);
  float prev = probe.opt.learning_rate();
  for (int i = 0; i < 10; ++i) {
    schedule.Step();
    EXPECT_LE(probe.opt.learning_rate(), prev + 1e-7f);
    prev = probe.opt.learning_rate();
  }
  EXPECT_FLOAT_EQ(probe.opt.learning_rate(), 0.01f);
  schedule.Step();  // past the horizon: stays at the floor
  EXPECT_FLOAT_EQ(probe.opt.learning_rate(), 0.01f);
}

TEST(LrScheduleTest, CosineHalfwayPointIsMidRate) {
  LrProbe probe;
  CosineLr schedule(&probe.opt, /*total_steps=*/8, /*min_lr=*/0.0f);
  EXPECT_NEAR(schedule.LrAt(4), 0.05f, 1e-6f);
}

TEST(LrScheduleTest, WarmupRampsLinearlyThenDelegates) {
  LrProbe probe;
  StepLr inner(&probe.opt, /*period=*/2, /*gamma=*/0.5f);
  WarmupLr schedule(&probe.opt, /*warmup_steps=*/4, &inner);
  EXPECT_NEAR(schedule.LrAt(1), 0.025f, 1e-6f);
  EXPECT_NEAR(schedule.LrAt(2), 0.05f, 1e-6f);
  EXPECT_NEAR(schedule.LrAt(3), 0.075f, 1e-6f);
  // Post-warmup: inner schedule's clock starts at zero.
  EXPECT_NEAR(schedule.LrAt(4), 0.1f, 1e-6f);   // inner step 0
  EXPECT_NEAR(schedule.LrAt(6), 0.05f, 1e-6f);  // inner step 2: one decay
}

TEST(LrScheduleTest, ScheduleDrivesOptimizerUpdates) {
  // The learning rate written by the schedule is the one SGD applies.
  LrProbe probe;
  probe.param.value[0] = 1.0f;
  CosineLr schedule(&probe.opt, 2, 0.0f);
  schedule.Step();  // lr = 0.05
  probe.param.grad[0] = 1.0f;
  probe.opt.Step();
  EXPECT_NEAR(probe.param.value[0], 1.0f - 0.05f, 1e-6f);
}

}  // namespace
}  // namespace zeus::nn
