// Integration tests: the full planning + execution pipeline on a small
// BDD-like dataset, the ZeusDb SQL facade, and cross-module invariants.
// Sizes are trimmed so the whole file runs in well under a minute.

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/query_planner.h"
#include "core/zeusdb.h"
#include "video/dataset.h"

namespace zeus {
namespace {

video::DatasetProfile SmallProfile() {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 12;
  profile.frames_per_video = 200;
  return profile;
}

core::QueryPlanner::Options FastPlannerOptions() {
  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 4;
  opts.profile.max_windows_per_config = 60;
  opts.trainer.episodes = 3;
  opts.trainer.min_buffer = 32;
  opts.trainer.agent.batch_size = 32;
  opts.max_rl_configs = 4;
  return opts;
}

TEST(PlannerIntegrationTest, PlanTrainsEverything) {
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 55);
  core::QueryPlanner planner(&ds, FastPlannerOptions());
  auto plan =
      planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const core::QueryPlan& p = plan.value();
  EXPECT_TRUE(p.apfg->trained());
  EXPECT_GT(p.apfg_stats.train_accuracy, 0.5f);
  EXPECT_EQ(p.space.size(), 64u);
  EXPECT_GE(p.rl_space.size(), 2u);
  EXPECT_LE(p.rl_space.size(), 4u);
  EXPECT_GT(p.rl_stats.steps, 0);
  EXPECT_GT(p.rl_stats.updates, 0);
  EXPECT_NE(p.agent, nullptr);
  // Every configuration got a cost and alpha.
  for (const auto& c : p.space.configs()) {
    EXPECT_GT(c.gpu_seconds_per_invocation, 0.0);
    EXPECT_GT(c.alpha, 0.0);
  }
}

TEST(PlannerIntegrationTest, ExecutorCoversEveryFrameOnce) {
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 56);
  core::QueryPlanner planner(&ds, FastPlannerOptions());
  auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
  ASSERT_TRUE(plan.ok());
  auto test = planner.SplitVideos(ds.test_indices());
  core::QueryExecutor executor(&plan.value());
  auto run = executor.Localize(test);
  ASSERT_EQ(run.masks.size(), test.size());
  long covered = 0;
  for (const auto& [id, frames] : run.frames_per_config) {
    (void)id;
    covered += frames;
  }
  EXPECT_EQ(covered, run.total_frames);
  EXPECT_GT(run.invocations, 0);
  EXPECT_GT(run.ThroughputFps(), 0.0);
}

TEST(PlannerIntegrationTest, RejectsEmptyTargets) {
  auto ds = video::SyntheticDataset::Generate(SmallProfile(), 57);
  core::QueryPlanner planner(&ds, FastPlannerOptions());
  auto plan = planner.PlanForClasses({}, 0.8);
  EXPECT_FALSE(plan.ok());
}

TEST(ZeusDbIntegrationTest, SqlQueryEndToEnd) {
  zeus::core::ZeusDb db(FastPlannerOptions());
  ASSERT_TRUE(db.RegisterDataset(
                    "bdd", video::SyntheticDataset::Generate(SmallProfile(), 58))
                  .ok());
  auto result = db.Execute(
      "bdd",
      "SELECT segment_ids FROM UDF(video) "
      "WHERE action_class = 'cross-right' AND accuracy >= 80%");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().plan_seconds, 0.0);
  EXPECT_GT(result.value().throughput_fps, 0.0);
  // Re-running the same query reuses the cached plan.
  auto again = db.Execute(
      "bdd",
      "SELECT segment_ids FROM UDF(video) "
      "WHERE action_class = 'cross-right' AND accuracy >= 80%");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().plan_seconds, 0.0);
  // Identical plans yield identical metrics (deterministic execution).
  EXPECT_EQ(again.value().metrics.tp, result.value().metrics.tp);
}

TEST(ZeusDbIntegrationTest, ErrorsSurfaceCleanly) {
  zeus::core::ZeusDb db(FastPlannerOptions());
  EXPECT_FALSE(db.Execute("nope", "SELECT s FROM v WHERE action_class='x'")
                   .ok());
  ASSERT_TRUE(db.RegisterDataset(
                    "bdd", video::SyntheticDataset::Generate(SmallProfile(), 59))
                  .ok());
  EXPECT_FALSE(db.Execute("bdd", "not sql at all").ok());
  EXPECT_FALSE(
      db.RegisterDataset("bdd",
                         video::SyntheticDataset::Generate(SmallProfile(), 60))
          .ok());
}

}  // namespace
}  // namespace zeus
