// Tests for the concurrent query engine: single-flight planning, executor
// selection, admission control, cancellation, LRU eviction and disk
// persistence. The key correctness bar everywhere: whatever the concurrency
// or executor, the localized segments and metrics must be bit-identical to
// a serial sequential execution of the same plan.

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/zeusdb.h"
#include "engine/executor_factory.h"
#include "engine/plan_cache.h"
#include "engine/query_engine.h"
#include "video/dataset.h"

namespace zeus {
namespace {

namespace fs = std::filesystem;

video::DatasetProfile SmallProfile() {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 12;
  profile.frames_per_video = 200;
  return profile;
}

core::QueryPlanner::Options FastPlannerOptions() {
  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 4;
  opts.profile.max_windows_per_config = 60;
  opts.trainer.episodes = 3;
  opts.trainer.min_buffer = 32;
  opts.trainer.agent.batch_size = 32;
  opts.max_rl_configs = 4;
  return opts;
}

constexpr uint64_t kDatasetSeed = 58;

video::SyntheticDataset MakeDataset() {
  return video::SyntheticDataset::Generate(SmallProfile(), kDatasetSeed);
}

core::ActionQuery CrossRightQuery(double accuracy = 0.8) {
  core::ActionQuery q;
  q.action_classes = {video::ActionClass::kCrossRight};
  q.accuracy_target = accuracy;
  return q;
}

void ExpectSameOutcome(const engine::QueryResult& a,
                       const engine::QueryResult& b) {
  EXPECT_TRUE(engine::SameSegments(a, b))
      << a.segments.size() << " vs " << b.segments.size() << " segments";
  EXPECT_EQ(a.metrics.tp, b.metrics.tp);
  EXPECT_EQ(a.metrics.fp, b.metrics.fp);
  EXPECT_EQ(a.metrics.fn, b.metrics.fn);
  EXPECT_EQ(a.metrics.tn, b.metrics.tn);
}

// Shared fixture: one persisted-plan engine whose single planner run feeds
// most of the suite (later engines reload the checkpoint from disk instead
// of re-training).
class QueryEngineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    persist_dir_ = new std::string(testing::TempDir() + "/zeus_engine_plans");
    fs::remove_all(*persist_dir_);
    fs::create_directories(*persist_dir_);

    engine::QueryEngine::Options opts;
    opts.num_workers = 4;
    opts.planner = FastPlannerOptions();
    opts.cache.persist_dir = *persist_dir_;
    engine_ = new engine::QueryEngine(opts);
    ASSERT_TRUE(engine_->RegisterDataset("bdd", MakeDataset()).ok());

    // Serial sequential ground truth; the one planner run of the fixture.
    engine::ExecutionOptions seq;
    seq.executor = engine::ExecutorKind::kSequential;
    auto baseline = engine_->Execute("bdd", CrossRightQuery(), seq);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_GT(baseline.value().plan_seconds, 0.0);
    baseline_seq_ = new engine::QueryResult(baseline.value());

    // Same plan through the default (auto => batched) path.
    auto batched = engine_->Execute("bdd", CrossRightQuery());
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    EXPECT_EQ(batched.value().plan_seconds, 0.0);  // cached
    baseline_auto_ = new engine::QueryResult(batched.value());
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete baseline_seq_;
    delete baseline_auto_;
    delete persist_dir_;
    engine_ = nullptr;
    baseline_seq_ = nullptr;
    baseline_auto_ = nullptr;
    persist_dir_ = nullptr;
  }

  static std::string* persist_dir_;
  static engine::QueryEngine* engine_;
  static engine::QueryResult* baseline_seq_;
  static engine::QueryResult* baseline_auto_;
};

std::string* QueryEngineTest::persist_dir_ = nullptr;
engine::QueryEngine* QueryEngineTest::engine_ = nullptr;
engine::QueryResult* QueryEngineTest::baseline_seq_ = nullptr;
engine::QueryResult* QueryEngineTest::baseline_auto_ = nullptr;

TEST_F(QueryEngineTest, MultiVideoQueriesRouteThroughBatchedByDefault) {
  EXPECT_EQ(baseline_seq_->executor, "Zeus-RL");
  EXPECT_EQ(baseline_auto_->executor, "Zeus-RL-Batched");
  // Batching changes cost accounting only — identical localization.
  ExpectSameOutcome(*baseline_auto_, *baseline_seq_);
}

TEST_F(QueryEngineTest, SingleFlightPlansExactlyOnce) {
  // Fresh engine, no persistence: the key is cold, so the four concurrent
  // submissions race into the plan cache together.
  engine::QueryEngine::Options opts;
  opts.num_workers = 4;
  opts.planner = FastPlannerOptions();
  engine::QueryEngine fresh(opts);
  ASSERT_TRUE(fresh.RegisterDataset("bdd", MakeDataset()).ok());

  std::vector<engine::QueryTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = fresh.Submit("bdd", CrossRightQuery());
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tickets.push_back(t.value());
  }
  int trained = 0;
  for (auto& t : tickets) {
    const auto& r = t.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(t.state(), engine::QueryState::kDone);
    EXPECT_EQ(t.progress(), 1.0);
    if (r.value().plan_seconds > 0.0) ++trained;
    ExpectSameOutcome(r.value(), *baseline_seq_);
  }
  // The planner ran once; exactly one ticket paid for it, the other three
  // joined the in-flight run (plan_seconds == 0).
  EXPECT_EQ(fresh.plan_cache().planner_runs(), 1);
  EXPECT_EQ(trained, 1);
}

TEST_F(QueryEngineTest, SingleFlightIsPerAccuracyBand) {
  // Two tiers on one dataset under a non-zero degrade level resolve to two
  // different accuracy bands (strict stays at 0.80, best-effort sheds one
  // band to 0.75), so the cache holds a cheap and a strict plan side by
  // side: exactly two planner runs, however many submissions race in.
  engine::QueryEngine::Options opts;
  opts.num_workers = 4;
  opts.planner = FastPlannerOptions();
  engine::QueryEngine fresh(opts);
  ASSERT_TRUE(fresh.RegisterDataset("bdd", MakeDataset()).ok());
  fresh.SetDegradeLevel(1);

  engine::ExecutionOptions strict;  // defaults: kStrict
  engine::ExecutionOptions cheap;
  cheap.tier = core::QueryTier::kBestEffort;

  std::vector<engine::QueryTicket> tickets;
  for (int i = 0; i < 2; ++i) {
    auto a = fresh.Submit("bdd", CrossRightQuery(0.8), strict);
    auto b = fresh.Submit("bdd", CrossRightQuery(0.8), cheap);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    tickets.push_back(a.value());
    tickets.push_back(b.value());
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const auto& r = tickets[i].Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const bool is_strict = i % 2 == 0;
    EXPECT_EQ(r.value().tier, is_strict ? core::QueryTier::kStrict
                                        : core::QueryTier::kBestEffort);
    EXPECT_DOUBLE_EQ(r.value().accuracy_band, is_strict ? 0.80 : 0.75);
  }
  // One planner run per band; the strict band's plan is the same one the
  // fixture trained, so the strict answers match the serial baseline.
  EXPECT_EQ(fresh.plan_cache().planner_runs(), 2);
  ExpectSameOutcome(tickets[0].Wait().value(), *baseline_seq_);
  // Both best-effort tickets were served from the one cheap-band plan.
  ExpectSameOutcome(tickets[1].Wait().value(), tickets[3].Wait().value());
  // The shed answers are counted and annotated as degraded.
  EXPECT_EQ(fresh.Stats().band_degraded, 2);
}

TEST_F(QueryEngineTest, MixedKeyConcurrentSubmitsMatchSerialExecution) {
  // One cached key and one cold key in flight together with repeats.
  const core::ActionQuery warm = CrossRightQuery(0.8);
  const core::ActionQuery cold = CrossRightQuery(0.75);
  std::vector<engine::QueryTicket> tickets;
  for (int i = 0; i < 2; ++i) {
    auto a = engine_->Submit("bdd", warm);
    auto b = engine_->Submit("bdd", cold);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    tickets.push_back(a.value());
    tickets.push_back(b.value());
  }
  for (auto& t : tickets) ASSERT_TRUE(t.Wait().ok());

  // Serial references, now that every plan is cached.
  engine::ExecutionOptions seq;
  seq.executor = engine::ExecutorKind::kSequential;
  auto warm_ref = engine_->Execute("bdd", warm, seq);
  auto cold_ref = engine_->Execute("bdd", cold, seq);
  ASSERT_TRUE(warm_ref.ok());
  ASSERT_TRUE(cold_ref.ok());
  EXPECT_EQ(warm_ref.value().plan_seconds, 0.0);
  EXPECT_EQ(cold_ref.value().plan_seconds, 0.0);
  for (size_t i = 0; i < tickets.size(); ++i) {
    const auto& r = tickets[i].Wait();
    ExpectSameOutcome(r.value(),
                      i % 2 == 0 ? warm_ref.value() : cold_ref.value());
  }
}

TEST_F(QueryEngineTest, CancellationDropsQueuedQueries) {
  // Single worker, cold cache: the first ticket holds the worker inside
  // the planner for seconds, so the two behind it are reliably still
  // queued when cancelled.
  engine::QueryEngine::Options opts;
  opts.num_workers = 1;
  opts.max_pending = 2;
  opts.planner = FastPlannerOptions();
  engine::QueryEngine fresh(opts);
  ASSERT_TRUE(fresh.RegisterDataset("bdd", MakeDataset()).ok());

  auto running = fresh.Submit("bdd", CrossRightQuery());
  ASSERT_TRUE(running.ok());
  // Wait for the worker to claim the first ticket (it then holds the
  // worker inside the planner for seconds), so the queue below holds
  // exactly the two tickets we cancel.
  while (running.value().state() == engine::QueryState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto queued1 = fresh.Submit("bdd", CrossRightQuery());
  auto queued2 = fresh.Submit("bdd", CrossRightQuery());
  ASSERT_TRUE(queued1.ok());
  ASSERT_TRUE(queued2.ok());
  queued1.value().Cancel();
  queued2.value().Cancel();

  // The queue is at max_pending, but both occupants are cancelled:
  // admission purges them instead of rejecting new work.
  auto after = fresh.Submit("bdd", CrossRightQuery());
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  const auto& first = running.value().Wait();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const auto& c1 = queued1.value().Wait();
  const auto& c2 = queued2.value().Wait();
  EXPECT_FALSE(c1.ok());
  EXPECT_FALSE(c2.ok());
  EXPECT_EQ(c1.status().code(), common::StatusCode::kCancelled);
  EXPECT_EQ(c2.status().code(), common::StatusCode::kCancelled);
  EXPECT_EQ(queued1.value().state(), engine::QueryState::kCancelled);
  EXPECT_TRUE(after.value().Wait().ok());
  // The cancelled tickets never planned or executed anything extra.
  EXPECT_EQ(fresh.plan_cache().planner_runs(), 1);
}

TEST_F(QueryEngineTest, AdmissionQueueBoundsPendingQueries) {
  engine::QueryEngine::Options opts;
  opts.num_workers = 1;
  opts.max_pending = 1;
  opts.planner = FastPlannerOptions();
  opts.cache.persist_dir = *persist_dir_;  // fast: plan loads from disk
  engine::QueryEngine fresh(opts);
  ASSERT_TRUE(fresh.RegisterDataset("bdd", MakeDataset()).ok());

  std::vector<engine::QueryTicket> admitted;
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    auto t = fresh.Submit("bdd", CrossRightQuery());
    if (t.ok()) {
      admitted.push_back(t.value());
    } else {
      EXPECT_EQ(t.status().code(), common::StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // With one worker and a queue bound of one, ten instant submissions
  // cannot all be admitted.
  EXPECT_GT(rejected, 0);
  for (auto& t : admitted) {
    const auto& r = t.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameOutcome(r.value(), *baseline_auto_);
  }
  EXPECT_EQ(fresh.plan_cache().planner_runs(), 0);  // disk hit
}

TEST_F(QueryEngineTest, PersistedPlanReloadsAfterRestartWithoutReplanning) {
  // "Engine restart": a brand-new engine pointed at the fixture's plan
  // directory serves the query without a planner run and with identical
  // results.
  engine::QueryEngine::Options opts;
  opts.planner = FastPlannerOptions();
  opts.cache.persist_dir = *persist_dir_;
  engine::QueryEngine restarted(opts);
  ASSERT_TRUE(restarted.RegisterDataset("bdd", MakeDataset()).ok());

  auto r = restarted.Execute("bdd", CrossRightQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().plan_seconds, 0.0);
  EXPECT_EQ(restarted.plan_cache().planner_runs(), 0);
  EXPECT_GE(restarted.plan_cache().disk_loads(), 1);
  ExpectSameOutcome(r.value(), *baseline_auto_);
}

TEST_F(QueryEngineTest, LruEvictionFallsBackToDisk) {
  engine::QueryEngine::Options opts;
  opts.planner = FastPlannerOptions();
  opts.cache.capacity = 1;
  opts.cache.persist_dir = *persist_dir_;
  engine::QueryEngine small(opts);
  ASSERT_TRUE(small.RegisterDataset("bdd", MakeDataset()).ok());

  const core::ActionQuery a = CrossRightQuery(0.8);
  ASSERT_TRUE(small.Execute("bdd", a).ok());  // disk load of key A
  EXPECT_NE(small.CachedPlan("bdd", a), nullptr);

  // Key B (persisted by the mixed-key test, otherwise planned here) evicts
  // A from the capacity-1 cache.
  const core::ActionQuery b = CrossRightQuery(0.75);
  ASSERT_TRUE(small.Execute("bdd", b).ok());
  EXPECT_LE(small.plan_cache().size(), 1u);
  EXPECT_EQ(small.CachedPlan("bdd", a), nullptr);
  EXPECT_NE(small.CachedPlan("bdd", b), nullptr);

  // A comes back from disk, not from the planner, and still matches the
  // fixture baseline exactly.
  const long loads_before = small.plan_cache().disk_loads();
  auto again = small.Execute("bdd", a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().plan_seconds, 0.0);
  EXPECT_GT(small.plan_cache().disk_loads(), loads_before);
  ExpectSameOutcome(again.value(), *baseline_auto_);
}

TEST_F(QueryEngineTest, ExplainReportsChosenExecutor) {
  core::ActionQuery q = CrossRightQuery();
  q.explain_only = true;
  auto r = engine_->Execute("bdd", q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().explanation.find("executor: batched"), std::string::npos)
      << r.value().explanation;

  engine::ExecutionOptions seq;
  seq.executor = engine::ExecutorKind::kSequential;
  auto rs = engine_->Execute("bdd", q, seq);
  ASSERT_TRUE(rs.ok());
  EXPECT_NE(rs.value().explanation.find("executor: sequential"),
            std::string::npos)
      << rs.value().explanation;
}

TEST_F(QueryEngineTest, SubmitSurfacesParseAndRegistryErrorsSynchronously) {
  EXPECT_FALSE(engine_->Submit("nope", CrossRightQuery()).ok());
  EXPECT_FALSE(engine_->Submit("bdd", "not sql at all").ok());
}

TEST(ExecutorFactoryTest, ResolvesAutoByVideoCount) {
  engine::ExecutionOptions opts;
  EXPECT_EQ(engine::ExecutorFactory::Resolve(opts, 1),
            engine::ExecutorKind::kSequential);
  EXPECT_EQ(engine::ExecutorFactory::Resolve(opts, 8),
            engine::ExecutorKind::kBatched);
  opts.executor = engine::ExecutorKind::kSliding;
  EXPECT_EQ(engine::ExecutorFactory::Resolve(opts, 8),
            engine::ExecutorKind::kSliding);
}

TEST(ExecutorFactoryTest, ParsesKindNames) {
  bool ok = false;
  EXPECT_EQ(engine::ParseExecutorKind("Batched", &ok),
            engine::ExecutorKind::kBatched);
  EXPECT_TRUE(ok);
  EXPECT_EQ(engine::ParseExecutorKind("segment_pp", &ok),
            engine::ExecutorKind::kSegmentPp);
  EXPECT_TRUE(ok);
  engine::ParseExecutorKind("warp-drive", &ok);
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace zeus
