// Transport-layer tests: wire framing round trips, totality of the
// decoders on garbage/truncated input (property-style, deterministic), the
// payload codecs of cluster/protocol.h, real-TCP frame exchange with
// deadlines, and the fault-injection seam. The framing invariant under
// test everywhere: a frame either decodes exactly or is rejected whole —
// no partial effect, no crash, no silent acceptance of corrupt bytes.

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/protocol.h"
#include "net/fault.h"
#include "net/frame_conn.h"
#include "net/socket.h"
#include "net/wire.h"

namespace zeus {
namespace {

// Deterministic byte generator (no std::random — identical on every
// platform and run).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint8_t Byte() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint8_t>(state_ >> 33);
  }
  std::string Bytes(size_t n) {
    std::string s(n, '\0');
    for (char& c : s) c = static_cast<char>(Byte());
    return s;
  }

 private:
  uint64_t state_;
};

std::string BodyOf(const net::Frame& frame) {
  // EncodeFrame emits the 4-byte length prefix + body; DecodeFrameBody
  // consumes the body.
  return net::EncodeFrame(frame).substr(4);
}

// ---- Framing ---------------------------------------------------------------

TEST(WireTest, FrameRoundTripsEveryTypeAndPayloadSize) {
  Lcg lcg(7);
  const net::FrameType types[] = {
      net::FrameType::kPing,      net::FrameType::kExecute,
      net::FrameType::kSubmit,    net::FrameType::kCancel,
      net::FrameType::kStats,     net::FrameType::kRegisterDataset,
      net::FrameType::kTicketState, net::FrameType::kTicketWait,
      net::FrameType::kRemoveDataset, net::FrameType::kSyncPlans,
      net::FrameType::kEpochQuery, net::FrameType::kPong,
      net::FrameType::kOk,        net::FrameType::kError,
      net::FrameType::kResult,    net::FrameType::kStatsReply,
      net::FrameType::kSubmitReply, net::FrameType::kTicketStateReply,
      net::FrameType::kRegisterReply, net::FrameType::kSyncReply,
      net::FrameType::kEpochReply, net::FrameType::kAppendFrames,
      net::FrameType::kSubscribe, net::FrameType::kStreamPoll,
      net::FrameType::kUnsubscribe, net::FrameType::kAppendReply,
      net::FrameType::kSubscribeReply, net::FrameType::kStreamResult};
  for (net::FrameType type : types) {
    for (size_t payload_size : {0u, 1u, 7u, 255u, 4096u}) {
      net::Frame in;
      in.type = type;
      in.request_id = lcg.Byte() * 1000003ull + payload_size;
      in.payload = lcg.Bytes(payload_size);
      net::Frame out;
      ASSERT_TRUE(net::DecodeFrameBody(BodyOf(in), &out).ok())
          << net::FrameTypeName(type) << " size " << payload_size;
      EXPECT_EQ(out.type, in.type);
      EXPECT_EQ(out.request_id, in.request_id);
      EXPECT_EQ(out.payload, in.payload);
    }
  }
}

TEST(WireTest, EveryTruncationIsRejected) {
  net::Frame frame;
  frame.type = net::FrameType::kExecute;
  frame.request_id = 42;
  frame.payload = Lcg(11).Bytes(64);
  const std::string body = BodyOf(frame);
  for (size_t len = 0; len < body.size(); ++len) {
    net::Frame out;
    EXPECT_FALSE(net::DecodeFrameBody(body.substr(0, len), &out).ok())
        << "prefix of length " << len << " decoded";
  }
}

TEST(WireTest, EverySingleByteFlipIsRejected) {
  net::Frame frame;
  frame.type = net::FrameType::kResult;
  frame.request_id = 7;
  frame.payload = Lcg(13).Bytes(48);
  const std::string body = BodyOf(frame);
  for (size_t i = 0; i < body.size(); ++i) {
    for (uint8_t flip : {0x01, 0x80}) {
      std::string corrupt = body;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      net::Frame out;
      EXPECT_FALSE(net::DecodeFrameBody(corrupt, &out).ok())
          << "flip 0x" << std::hex << int(flip) << " at byte " << std::dec
          << i << " accepted";
    }
  }
}

TEST(WireTest, GarbageNeverCrashesTheDecoder) {
  Lcg lcg(17);
  for (int round = 0; round < 500; ++round) {
    const std::string garbage = lcg.Bytes(round % 97);
    net::Frame out;
    net::DecodeFrameBody(garbage, &out);  // must not crash; result unused
  }
}

TEST(WireTest, WrongVersionIsRejected) {
  net::Frame frame;
  frame.type = net::FrameType::kPing;
  std::string body = BodyOf(frame);
  body[0] = static_cast<char>(net::kWireVersion + 1);
  net::Frame out;
  EXPECT_FALSE(net::DecodeFrameBody(body, &out).ok());
}

TEST(WireTest, IdempotencyClassification) {
  // The retry contract hangs off this classification; pin it.
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kPing));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kCancel));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kStats));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kRegisterDataset));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kTicketState));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kRemoveDataset));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kSyncPlans));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kEpochQuery));
  // The stream set is idempotent BY CONSTRUCTION (absolute append targets,
  // caller-chosen subscription ids, explicit poll cursors) — that is what
  // lets a lost response retry through a failover.
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kAppendFrames));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kSubscribe));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kStreamPoll));
  EXPECT_TRUE(net::IsIdempotent(net::FrameType::kUnsubscribe));
  EXPECT_FALSE(net::IsIdempotent(net::FrameType::kExecute));
  EXPECT_FALSE(net::IsIdempotent(net::FrameType::kSubmit));
  EXPECT_FALSE(net::IsIdempotent(net::FrameType::kTicketWait));
}

TEST(WireTest, ReaderRejectsLyingStringLength) {
  net::WireWriter w;
  w.U32(1u << 30);  // claims a 1GB string in a 4-byte buffer
  net::WireReader r(w.str());
  std::string s;
  EXPECT_FALSE(r.Str(&s));
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, F64RoundTripsExactBits) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e-308, 1e308, -123.456};
  net::WireWriter w;
  for (double v : values) w.F64(v);
  net::WireReader r(w.str());
  for (double v : values) {
    double out = 0;
    ASSERT_TRUE(r.F64(&out));
    uint64_t a, b;
    std::memcpy(&a, &v, 8);
    std::memcpy(&b, &out, 8);
    EXPECT_EQ(a, b);
  }
  EXPECT_TRUE(r.AtEnd());
}

// ---- Protocol payload codecs ----------------------------------------------

TEST(ProtocolTest, DatasetSpecRoundTrip) {
  cluster::DatasetSpec in;
  in.name = "bdd-sliced";
  in.family = video::DatasetFamily::kKittiLike;
  in.seed = 9917;
  in.num_videos = 28;
  in.frames_per_video = 400;
  in.native_resolution = 720;
  in.warm_plans = false;
  in.epoch = 41;
  cluster::DatasetSpec out;
  ASSERT_TRUE(cluster::DecodeDatasetSpec(cluster::EncodeDatasetSpec(in), &out));
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.family, in.family);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.num_videos, in.num_videos);
  EXPECT_EQ(out.frames_per_video, in.frames_per_video);
  EXPECT_EQ(out.native_resolution, in.native_resolution);
  EXPECT_EQ(out.warm_plans, in.warm_plans);
  EXPECT_EQ(out.epoch, in.epoch);
}

TEST(ProtocolTest, QueryResultRoundTripIsBitExact) {
  engine::QueryResult in;
  in.segments = {{0, 10, 25}, {3, 0, 7}, {11, 99, 400}};
  in.metrics.tp = 120;
  in.metrics.fp = 4;
  in.metrics.fn = 9;
  in.metrics.tn = 10000;
  in.metrics.precision = 120.0 / 124.0;
  in.metrics.recall = 120.0 / 129.0;
  in.metrics.f1 = 0.9487179487179487;
  in.throughput_fps = 12345.6789;
  in.gpu_seconds = 1.0 / 3.0;
  in.wall_seconds = 2.718281828459045;
  in.plan_seconds = 0.0;
  in.executor = "Zeus-RL-Batched";
  in.explanation = "";
  in.consistency = engine::Consistency::kDegraded;
  in.divergence = "shard 2 served epoch 1, committed epoch is 3";
  in.epoch = 1;
  in.tier = core::QueryTier::kBestEffort;
  in.accuracy_band = 0.75;
  in.achieved_confidence = 0.8123456789012345;
  in.budget_exhausted = true;
  in.window_begin = 120;
  in.window_end = 520;
  in.frame_epoch = 6;
  engine::QueryResult out;
  ASSERT_TRUE(
      cluster::DecodeQueryResult(cluster::EncodeQueryResult(in), &out));
  EXPECT_TRUE(engine::SameSegments(in, out));
  EXPECT_EQ(out.metrics.tp, in.metrics.tp);
  EXPECT_EQ(out.metrics.tn, in.metrics.tn);
  // Doubles must survive bit-exactly — the cluster's bit-identity promise
  // includes the metrics a client sees.
  EXPECT_EQ(out.metrics.f1, in.metrics.f1);
  EXPECT_EQ(out.wall_seconds, in.wall_seconds);
  EXPECT_EQ(out.executor, in.executor);
  // The consistency annotation is part of the answer, not metadata a relay
  // may drop: it survives the wire exactly.
  EXPECT_EQ(out.consistency, in.consistency);
  EXPECT_EQ(out.divergence, in.divergence);
  EXPECT_EQ(out.epoch, in.epoch);
  // The accuracy annotation is part of the answer too: tier, band and the
  // confidence estimate survive bit-exactly.
  EXPECT_EQ(out.tier, in.tier);
  EXPECT_EQ(out.accuracy_band, in.accuracy_band);
  EXPECT_EQ(out.achieved_confidence, in.achieved_confidence);
  EXPECT_EQ(out.budget_exhausted, in.budget_exhausted);
  // The streaming window annotation is part of the answer too.
  EXPECT_EQ(out.window_begin, in.window_begin);
  EXPECT_EQ(out.window_end, in.window_end);
  EXPECT_EQ(out.frame_epoch, in.frame_epoch);

  // An inverted window is a contract violation, rejected whole.
  in.window_begin = 10;
  in.window_end = 3;
  EXPECT_FALSE(
      cluster::DecodeQueryResult(cluster::EncodeQueryResult(in), &out));
}

TEST(ProtocolTest, ExecRequestCarriesAccuracyBudget) {
  cluster::ExecRequest in;
  in.dataset = "bdd";
  in.sql = "SELECT 1";
  in.priority = 3;
  in.tier = core::QueryTier::kBalanced;
  in.min_accuracy = 0.7;
  in.max_latency_budget = 12.5;
  cluster::ExecRequest out;
  ASSERT_TRUE(
      cluster::DecodeExecRequest(cluster::EncodeExecRequest(in), &out));
  EXPECT_EQ(out.dataset, in.dataset);
  EXPECT_EQ(out.sql, in.sql);
  EXPECT_EQ(out.priority, in.priority);
  EXPECT_EQ(out.tier, in.tier);
  EXPECT_EQ(out.min_accuracy, in.min_accuracy);
  EXPECT_EQ(out.max_latency_budget, in.max_latency_budget);

  // An out-of-range tier byte is rejected whole. The tier byte sits right
  // after the i32 priority: str + str + i32 + u8 + f64 + f64.
  std::string payload = cluster::EncodeExecRequest(in);
  payload[payload.size() - 17] = 9;
  EXPECT_FALSE(cluster::DecodeExecRequest(payload, &out));
}

TEST(ProtocolTest, QueryResultRejectsContradictoryConsistency) {
  // kCertain with a divergence reason is a contract violation — the decoder
  // refuses it rather than letting one end claim certainty and explain
  // divergence at the same time.
  engine::QueryResult in;
  in.segments = {{0, 1, 2}};
  in.consistency = engine::Consistency::kCertain;
  in.divergence = "should not be here";
  engine::QueryResult out;
  EXPECT_FALSE(
      cluster::DecodeQueryResult(cluster::EncodeQueryResult(in), &out));
  // An out-of-range consistency byte is rejected whole. The trailer after
  // the consistency byte is str(4) + u64 epoch + f64 confidence + f64 band
  // + u8 tier + u8 budget_exhausted + i64 window_begin + i64 window_end +
  // u64 frame_epoch = 54 bytes.
  in.divergence.clear();
  std::string payload = cluster::EncodeQueryResult(in);
  const std::string tail = payload.substr(payload.size() - 55);
  payload[payload.size() - 55] = 5;  // consistency byte
  ASSERT_EQ(tail[0], 0);  // we really did point at the consistency byte
  EXPECT_FALSE(cluster::DecodeQueryResult(payload, &out));
  // Same for the tier byte and the budget flag, which sit just ahead of
  // the 24-byte window trailer.
  payload = cluster::EncodeQueryResult(in);
  payload[payload.size() - 26] = 7;
  EXPECT_FALSE(cluster::DecodeQueryResult(payload, &out));
  payload = cluster::EncodeQueryResult(in);
  payload[payload.size() - 25] = 2;
  EXPECT_FALSE(cluster::DecodeQueryResult(payload, &out));
}

TEST(ProtocolTest, SyncAndEpochCodecsRoundTrip) {
  cluster::SyncPlansRequest sync_in;
  sync_in.name = "bdd";
  sync_in.epoch = 7;
  cluster::SyncPlansRequest sync_out;
  ASSERT_TRUE(
      cluster::DecodeSyncPlans(cluster::EncodeSyncPlans(sync_in), &sync_out));
  EXPECT_EQ(sync_out.name, sync_in.name);
  EXPECT_EQ(sync_out.epoch, sync_in.epoch);

  cluster::SyncReply sr_in;
  sr_in.plans_warmed = 3;
  sr_in.epoch = 7;
  cluster::SyncReply sr_out;
  ASSERT_TRUE(
      cluster::DecodeSyncReply(cluster::EncodeSyncReply(sr_in), &sr_out));
  EXPECT_EQ(sr_out.plans_warmed, sr_in.plans_warmed);
  EXPECT_EQ(sr_out.epoch, sr_in.epoch);

  cluster::EpochReply ep_in;
  ep_in.epoch = 12;
  ep_in.has_dataset = true;
  cluster::EpochReply ep_out;
  ASSERT_TRUE(
      cluster::DecodeEpochReply(cluster::EncodeEpochReply(ep_in), &ep_out));
  EXPECT_EQ(ep_out.epoch, ep_in.epoch);
  EXPECT_EQ(ep_out.has_dataset, ep_in.has_dataset);

  // A sync request for the empty dataset name is malformed by definition.
  cluster::SyncPlansRequest empty;
  EXPECT_FALSE(
      cluster::DecodeSyncPlans(cluster::EncodeSyncPlans(empty), &sync_out));
}

TEST(ProtocolTest, StreamCodecsRoundTrip) {
  // kAppendFrames: the two mutually exclusive forms. Absolute (shard-bound,
  // replayable) round-trips; so does the router-only relative form; a frame
  // carrying BOTH or NEITHER is malformed by definition.
  cluster::AppendFramesRequest ap_in;
  ap_in.name = "stream";
  ap_in.target_frames = 1664;
  ap_in.epoch = 9;
  cluster::AppendFramesRequest ap_out;
  ASSERT_TRUE(
      cluster::DecodeAppendFrames(cluster::EncodeAppendFrames(ap_in), &ap_out));
  EXPECT_EQ(ap_out.name, ap_in.name);
  EXPECT_EQ(ap_out.target_frames, ap_in.target_frames);
  EXPECT_EQ(ap_out.relative_frames, 0u);
  EXPECT_EQ(ap_out.epoch, ap_in.epoch);

  cluster::AppendFramesRequest rel;
  rel.name = "stream";
  rel.relative_frames = 64;
  ASSERT_TRUE(
      cluster::DecodeAppendFrames(cluster::EncodeAppendFrames(rel), &ap_out));
  EXPECT_EQ(ap_out.relative_frames, 64u);
  EXPECT_EQ(ap_out.target_frames, 0u);

  cluster::AppendFramesRequest both = ap_in;
  both.relative_frames = 64;
  EXPECT_FALSE(
      cluster::DecodeAppendFrames(cluster::EncodeAppendFrames(both), &ap_out));
  cluster::AppendFramesRequest neither;
  neither.name = "stream";
  EXPECT_FALSE(cluster::DecodeAppendFrames(cluster::EncodeAppendFrames(neither),
                                           &ap_out));
  cluster::AppendFramesRequest unnamed = ap_in;
  unnamed.name.clear();
  EXPECT_FALSE(cluster::DecodeAppendFrames(cluster::EncodeAppendFrames(unnamed),
                                           &ap_out));

  cluster::AppendReply ar_in;
  ar_in.frame_epoch = 9;
  ar_in.stream_length = 1664;
  ar_in.appended = 64;
  cluster::AppendReply ar_out;
  ASSERT_TRUE(
      cluster::DecodeAppendReply(cluster::EncodeAppendReply(ar_in), &ar_out));
  EXPECT_EQ(ar_out.frame_epoch, ar_in.frame_epoch);
  EXPECT_EQ(ar_out.stream_length, ar_in.stream_length);
  EXPECT_EQ(ar_out.appended, ar_in.appended);
  // appended > stream_length is arithmetic nonsense, rejected whole.
  ar_in.appended = 2000;
  EXPECT_FALSE(
      cluster::DecodeAppendReply(cluster::EncodeAppendReply(ar_in), &ar_out));

  cluster::SubscribeRequest sub_in;
  sub_in.dataset = "stream";
  sub_in.sql = "SELECT frames WHERE class = 'car'";
  sub_in.sub_id = 41;
  sub_in.window_frames = 400;
  sub_in.max_buffered = 8;
  sub_in.tier = core::QueryTier::kBalanced;
  sub_in.min_accuracy = 0.8;
  sub_in.max_latency_budget = 2.5;
  cluster::SubscribeRequest sub_out;
  ASSERT_TRUE(cluster::DecodeSubscribeRequest(
      cluster::EncodeSubscribeRequest(sub_in), &sub_out));
  EXPECT_EQ(sub_out.dataset, sub_in.dataset);
  EXPECT_EQ(sub_out.sql, sub_in.sql);
  EXPECT_EQ(sub_out.sub_id, sub_in.sub_id);
  EXPECT_EQ(sub_out.window_frames, sub_in.window_frames);
  EXPECT_EQ(sub_out.max_buffered, sub_in.max_buffered);
  EXPECT_EQ(sub_out.tier, sub_in.tier);
  EXPECT_EQ(sub_out.min_accuracy, sub_in.min_accuracy);
  EXPECT_EQ(sub_out.max_latency_budget, sub_in.max_latency_budget);
  // sub_id 0 is legal on the wire (router-assigned id); the shard handler
  // is what rejects it there.
  sub_in.sub_id = 0;
  EXPECT_TRUE(cluster::DecodeSubscribeRequest(
      cluster::EncodeSubscribeRequest(sub_in), &sub_out));
  sub_in.sub_id = 41;
  sub_in.sql.clear();
  EXPECT_FALSE(cluster::DecodeSubscribeRequest(
      cluster::EncodeSubscribeRequest(sub_in), &sub_out));

  cluster::SubscribeReply sr_in;
  sr_in.sub_id = 41;
  sr_in.frame_epoch = 3;
  sr_in.attached_existing = true;
  cluster::SubscribeReply sr_out;
  ASSERT_TRUE(cluster::DecodeSubscribeReply(
      cluster::EncodeSubscribeReply(sr_in), &sr_out));
  EXPECT_EQ(sr_out.sub_id, sr_in.sub_id);
  EXPECT_EQ(sr_out.frame_epoch, sr_in.frame_epoch);
  EXPECT_EQ(sr_out.attached_existing, sr_in.attached_existing);

  cluster::StreamPollRequest poll_in;
  poll_in.sub_id = 41;
  poll_in.after_seq = 6;
  poll_in.timeout_ms = 750;
  cluster::StreamPollRequest poll_out;
  ASSERT_TRUE(
      cluster::DecodeStreamPoll(cluster::EncodeStreamPoll(poll_in), &poll_out));
  EXPECT_EQ(poll_out.sub_id, poll_in.sub_id);
  EXPECT_EQ(poll_out.after_seq, poll_in.after_seq);
  EXPECT_EQ(poll_out.timeout_ms, poll_in.timeout_ms);

  // kStreamResult nests a full QueryResult — the incremental answer crosses
  // the wire bit-exactly, window annotation included.
  cluster::StreamResultMsg msg_in;
  msg_in.seq = 7;
  msg_in.dropped = 2;
  msg_in.result.segments = {{0, 10, 25}, {3, 0, 7}};
  msg_in.result.metrics.f1 = 0.9487179487179487;
  msg_in.result.wall_seconds = 2.718281828459045;
  msg_in.result.epoch = 9;
  msg_in.result.window_begin = 1264;
  msg_in.result.window_end = 1664;
  msg_in.result.frame_epoch = 9;
  cluster::StreamResultMsg msg_out;
  ASSERT_TRUE(cluster::DecodeStreamResult(cluster::EncodeStreamResult(msg_in),
                                          &msg_out));
  EXPECT_EQ(msg_out.seq, msg_in.seq);
  EXPECT_EQ(msg_out.dropped, msg_in.dropped);
  EXPECT_TRUE(engine::SameSegments(msg_in.result, msg_out.result));
  EXPECT_EQ(msg_out.result.metrics.f1, msg_in.result.metrics.f1);
  EXPECT_EQ(msg_out.result.wall_seconds, msg_in.result.wall_seconds);
  EXPECT_EQ(msg_out.result.window_begin, msg_in.result.window_begin);
  EXPECT_EQ(msg_out.result.window_end, msg_in.result.window_end);
  EXPECT_EQ(msg_out.result.frame_epoch, msg_in.result.frame_epoch);
  // seq 0 never names a published update.
  msg_in.seq = 0;
  EXPECT_FALSE(cluster::DecodeStreamResult(cluster::EncodeStreamResult(msg_in),
                                           &msg_out));
}

TEST(ProtocolTest, StatsReplyCarriesStreamCounters) {
  // The stream counters are the newest StatsReply fields — a lossy codec
  // here would zero every cluster /metrics stream family silently.
  cluster::StatsReply in;
  in.stats.appends = 5;
  in.stats.appended_frames = 320;
  in.stats.subscribes = 2;
  in.stats.unsubscribes = 1;
  in.stats.stream_results = 12;
  in.stats.stream_dropped = 3;
  in.stats.feature_hits = 30;
  in.stats.feature_misses = 6;
  in.stats.feature_evictions = 2;
  cluster::StatsReply out;
  ASSERT_TRUE(cluster::DecodeStatsReply(cluster::EncodeStatsReply(in), &out));
  EXPECT_EQ(out.stats.appends, in.stats.appends);
  EXPECT_EQ(out.stats.appended_frames, in.stats.appended_frames);
  EXPECT_EQ(out.stats.subscribes, in.stats.subscribes);
  EXPECT_EQ(out.stats.unsubscribes, in.stats.unsubscribes);
  EXPECT_EQ(out.stats.stream_results, in.stats.stream_results);
  EXPECT_EQ(out.stats.stream_dropped, in.stats.stream_dropped);
  EXPECT_EQ(out.stats.feature_hits, in.stats.feature_hits);
  EXPECT_EQ(out.stats.feature_misses, in.stats.feature_misses);
  EXPECT_EQ(out.stats.feature_evictions, in.stats.feature_evictions);
}

TEST(ProtocolTest, DecodersAreTotalOnTruncationsAndGarbage) {
  cluster::DatasetSpec spec;
  spec.name = "d";
  cluster::ExecRequest exec;
  exec.dataset = "d";
  exec.sql = "SELECT 1";
  engine::QueryResult result;
  result.segments = {{1, 2, 3}};
  cluster::StatsReply stats;
  stats.stats.shard = 2;
  stats.stats.datasets.resize(2);
  stats.stats.datasets[0].dataset = "a";
  stats.stats.datasets[1].dataset = "b";

  cluster::SyncPlansRequest sync;
  sync.name = "d";
  sync.epoch = 3;
  cluster::SyncReply sync_reply;
  sync_reply.plans_warmed = 1;
  sync_reply.epoch = 3;
  cluster::EpochReply epoch_reply;
  epoch_reply.epoch = 3;
  epoch_reply.has_dataset = true;

  cluster::AppendFramesRequest append;
  append.name = "d";
  append.target_frames = 500;
  append.epoch = 2;
  cluster::AppendReply append_reply;
  append_reply.frame_epoch = 2;
  append_reply.stream_length = 500;
  append_reply.appended = 100;
  cluster::SubscribeRequest subscribe;
  subscribe.dataset = "d";
  subscribe.sql = "SELECT 1";
  subscribe.sub_id = 5;
  cluster::SubscribeReply subscribe_reply;
  subscribe_reply.sub_id = 5;
  subscribe_reply.frame_epoch = 2;
  cluster::StreamPollRequest stream_poll;
  stream_poll.sub_id = 5;
  stream_poll.after_seq = 1;
  cluster::StreamResultMsg stream_result;
  stream_result.seq = 2;
  stream_result.result = result;

  const std::string payloads[] = {
      cluster::EncodeDatasetSpec(spec), cluster::EncodeExecRequest(exec),
      cluster::EncodeQueryResult(result), cluster::EncodeStatsReply(stats),
      cluster::EncodeTicketId(77), cluster::EncodeSyncPlans(sync),
      cluster::EncodeSyncReply(sync_reply),
      cluster::EncodeEpochReply(epoch_reply),
      cluster::EncodeAppendFrames(append),
      cluster::EncodeAppendReply(append_reply),
      cluster::EncodeSubscribeRequest(subscribe),
      cluster::EncodeSubscribeReply(subscribe_reply),
      cluster::EncodeStreamPoll(stream_poll),
      cluster::EncodeStreamResult(stream_result)};
  for (const std::string& payload : payloads) {
    for (size_t len = 0; len < payload.size(); ++len) {
      const std::string prefix = payload.substr(0, len);
      cluster::DatasetSpec s;
      cluster::ExecRequest e;
      engine::QueryResult r;
      cluster::StatsReply st;
      uint64_t id = 0;
      cluster::SyncPlansRequest sp;
      cluster::SyncReply srp;
      cluster::EpochReply ep;
      cluster::AppendFramesRequest af;
      cluster::AppendReply afr;
      cluster::SubscribeRequest sq;
      cluster::SubscribeReply sqr;
      cluster::StreamPollRequest spl;
      cluster::StreamResultMsg srm;
      EXPECT_FALSE(cluster::DecodeDatasetSpec(prefix, &s) &&
                   cluster::DecodeExecRequest(prefix, &e) &&
                   cluster::DecodeQueryResult(prefix, &r) &&
                   cluster::DecodeStatsReply(prefix, &st) &&
                   cluster::DecodeTicketId(prefix, &id) &&
                   cluster::DecodeSyncPlans(prefix, &sp) &&
                   cluster::DecodeSyncReply(prefix, &srp) &&
                   cluster::DecodeEpochReply(prefix, &ep) &&
                   cluster::DecodeAppendFrames(prefix, &af) &&
                   cluster::DecodeAppendReply(prefix, &afr) &&
                   cluster::DecodeSubscribeRequest(prefix, &sq) &&
                   cluster::DecodeSubscribeReply(prefix, &sqr) &&
                   cluster::DecodeStreamPoll(prefix, &spl) &&
                   cluster::DecodeStreamResult(prefix, &srm));
    }
    // Trailing junk is also rejected (AtEnd discipline).
    cluster::DatasetSpec s;
    EXPECT_FALSE(cluster::DecodeDatasetSpec(payload + "x", &s));
    cluster::SyncPlansRequest sp;
    EXPECT_FALSE(cluster::DecodeSyncPlans(payload + "x", &sp));
  }
  // The replication frames are small and fixed-shape: every strict prefix
  // must be rejected by the frame's OWN decoder, not just the weak
  // all-decoders conjunction above.
  {
    const std::string p = cluster::EncodeSyncPlans(sync);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::SyncPlansRequest sp;
      EXPECT_FALSE(cluster::DecodeSyncPlans(p.substr(0, len), &sp))
          << "SyncPlans prefix of length " << len << " decoded";
    }
  }
  {
    const std::string p = cluster::EncodeSyncReply(sync_reply);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::SyncReply srp;
      EXPECT_FALSE(cluster::DecodeSyncReply(p.substr(0, len), &srp))
          << "SyncReply prefix of length " << len << " decoded";
    }
  }
  {
    const std::string p = cluster::EncodeEpochReply(epoch_reply);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::EpochReply ep;
      EXPECT_FALSE(cluster::DecodeEpochReply(p.substr(0, len), &ep))
          << "EpochReply prefix of length " << len << " decoded";
    }
    // has_dataset is a strict bool on the wire: 2 is rejected, not coerced.
    // It sits ahead of the trailing u64 stream_length.
    std::string bogus = p;
    bogus[bogus.size() - 9] = 2;
    cluster::EpochReply ep;
    EXPECT_FALSE(cluster::DecodeEpochReply(bogus, &ep));
  }
  // The stream codecs get their own strict-prefix sweep too: every one of
  // them crosses process boundaries during a failover, where a torn frame
  // is the NORMAL case, not the exotic one.
  {
    const std::string p = cluster::EncodeAppendFrames(append);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::AppendFramesRequest af;
      EXPECT_FALSE(cluster::DecodeAppendFrames(p.substr(0, len), &af))
          << "AppendFrames prefix of length " << len << " decoded";
    }
  }
  {
    const std::string p = cluster::EncodeAppendReply(append_reply);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::AppendReply afr;
      EXPECT_FALSE(cluster::DecodeAppendReply(p.substr(0, len), &afr))
          << "AppendReply prefix of length " << len << " decoded";
    }
  }
  {
    const std::string p = cluster::EncodeSubscribeRequest(subscribe);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::SubscribeRequest sq;
      EXPECT_FALSE(cluster::DecodeSubscribeRequest(p.substr(0, len), &sq))
          << "SubscribeRequest prefix of length " << len << " decoded";
    }
  }
  {
    const std::string p = cluster::EncodeStreamPoll(stream_poll);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::StreamPollRequest spl;
      EXPECT_FALSE(cluster::DecodeStreamPoll(p.substr(0, len), &spl))
          << "StreamPoll prefix of length " << len << " decoded";
    }
  }
  {
    const std::string p = cluster::EncodeStreamResult(stream_result);
    for (size_t len = 0; len < p.size(); ++len) {
      cluster::StreamResultMsg srm;
      EXPECT_FALSE(cluster::DecodeStreamResult(p.substr(0, len), &srm))
          << "StreamResult prefix of length " << len << " decoded";
    }
  }
  Lcg lcg(23);
  for (int round = 0; round < 200; ++round) {
    const std::string garbage = lcg.Bytes(round % 61);
    cluster::StatsReply st;
    cluster::DecodeStatsReply(garbage, &st);  // must not crash
    engine::QueryResult r;
    cluster::DecodeQueryResult(garbage, &r);  // must not crash
    cluster::SyncPlansRequest sp;
    cluster::DecodeSyncPlans(garbage, &sp);  // must not crash
    cluster::EpochReply ep;
    cluster::DecodeEpochReply(garbage, &ep);  // must not crash
    cluster::AppendFramesRequest af;
    cluster::DecodeAppendFrames(garbage, &af);  // must not crash
    cluster::SubscribeRequest sq;
    cluster::DecodeSubscribeRequest(garbage, &sq);  // must not crash
    cluster::StreamResultMsg srm;
    cluster::DecodeStreamResult(garbage, &srm);  // must not crash
  }
}

TEST(ProtocolTest, ErrorFrameCarriesStatusAcrossTheWire) {
  const common::Status in = common::Status::NotFound("no such dataset");
  net::Frame frame = cluster::MakeErrorFrame(9, in);
  EXPECT_EQ(frame.type, net::FrameType::kError);
  const common::Status out = cluster::DecodeErrorFrame(frame);
  EXPECT_EQ(out.code(), in.code());
  EXPECT_EQ(out.message(), in.message());

  // A malformed error frame degrades to kUnavailable, never to kOk.
  net::Frame bogus;
  bogus.type = net::FrameType::kError;
  bogus.payload = "";
  EXPECT_EQ(cluster::DecodeErrorFrame(bogus).code(),
            common::StatusCode::kUnavailable);
}

// ---- Real TCP exchange -----------------------------------------------------

class EchoServer {
 public:
  EchoServer() {
    EXPECT_TRUE(listener_.Listen("127.0.0.1", 0).ok());
    thread_ = std::thread([this] {
      // Serve connections one after another: clients that poison a
      // connection reconnect, like RemoteShard does.
      for (;;) {
        auto accepted = listener_.Accept();
        if (!accepted.ok()) return;
        net::FrameConn conn(std::move(accepted).value(), "server:echo");
        net::Frame frame;
        while (conn.ReadFrame(&frame, 5'000).ok()) {
          if (!conn.WriteFrame(frame, 5'000).ok()) break;
        }
      }
    });
  }
  ~EchoServer() {
    listener_.Close();
    thread_.join();
  }
  int port() const { return listener_.port(); }

 private:
  net::TcpListener listener_;
  std::thread thread_;
};

net::FrameConn ConnectTo(int port, const std::string& tag = "client:test") {
  net::TcpSocket socket;
  EXPECT_TRUE(socket.Connect("127.0.0.1", port, 2'000).ok());
  return net::FrameConn(std::move(socket), tag);
}

TEST(SocketTest, FramesSurviveRealTcp) {
  EchoServer server;
  net::FrameConn conn = ConnectTo(server.port());
  Lcg lcg(31);
  for (size_t size : {0u, 1u, 1000u, 100000u}) {
    net::Frame out;
    out.type = net::FrameType::kExecute;
    out.request_id = size;
    out.payload = lcg.Bytes(size);
    ASSERT_TRUE(conn.WriteFrame(out, 5'000).ok());
    net::Frame in;
    ASSERT_TRUE(conn.ReadFrame(&in, 5'000).ok());
    EXPECT_EQ(in.request_id, out.request_id);
    EXPECT_EQ(in.payload, out.payload);
  }
}

TEST(SocketTest, ReadDeadlineSurfacesUnavailable) {
  EchoServer server;
  net::FrameConn conn = ConnectTo(server.port());
  net::Frame in;
  common::Status st = conn.ReadFrame(&in, 100);  // nothing is coming
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), common::StatusCode::kUnavailable);
  EXPECT_TRUE(common::IsRetryable(st.code()));
}

TEST(SocketTest, CleanPeerCloseBetweenFramesIsNotFound) {
  net::TcpListener listener;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0).ok());
  std::thread server([&] {
    auto accepted = listener.Accept();
    // Close immediately: a clean FIN before any frame.
  });
  net::FrameConn conn = ConnectTo(listener.port());
  net::Frame in;
  common::Status st = conn.ReadFrame(&in, 2'000);
  EXPECT_EQ(st.code(), common::StatusCode::kNotFound);
  server.join();
}

TEST(SocketTest, GarbageStreamIsRejectedAsCorrupt) {
  net::TcpListener listener;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0).ok());
  std::thread server([&] {
    auto accepted = listener.Accept();
    if (!accepted.ok()) return;
    net::TcpSocket peer = std::move(accepted).value();
    // A plausible length prefix followed by garbage: the crc must reject it.
    std::string bytes;
    const uint32_t len = 64;
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    }
    bytes += Lcg(37).Bytes(len);
    peer.WriteAll(bytes.data(), bytes.size(), 2'000);
  });
  net::FrameConn conn = ConnectTo(listener.port());
  net::Frame in;
  common::Status st = conn.ReadFrame(&in, 2'000);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), common::StatusCode::kUnavailable);
  server.join();
}

// ---- Fault injection seam --------------------------------------------------

class FaultGuard {
 public:
  explicit FaultGuard(net::FaultInjector* injector) {
    net::SetFaultInjector(injector);
  }
  ~FaultGuard() { net::SetFaultInjector(nullptr); }
};

TEST(FaultTest, SendDropSwallowsTheFrame) {
  EchoServer server;
  net::FrameConn conn = ConnectTo(server.port());
  net::FaultInjector injector;
  FaultGuard guard(&injector);
  net::FaultRule rule;
  rule.action = net::FaultAction::kDrop;
  rule.direction = net::FaultDirection::kSend;
  rule.tag_contains = "client:test";
  injector.AddRule(rule);

  net::Frame out;
  out.type = net::FrameType::kPing;
  out.request_id = 1;
  EXPECT_TRUE(conn.WriteFrame(out, 2'000).ok());  // sender believes it went
  net::Frame in;
  EXPECT_EQ(conn.ReadFrame(&in, 200).code(),
            common::StatusCode::kUnavailable);  // but no echo ever comes
  EXPECT_EQ(injector.fired_count(), 1);

  // The timed-out read poisoned the connection (correct: nothing on that
  // stream can be trusted any more). A fresh connection — what RemoteShard
  // does on retry — exchanges frames untouched, the rule being consumed.
  net::FrameConn fresh = ConnectTo(server.port());
  out.request_id = 2;
  ASSERT_TRUE(fresh.WriteFrame(out, 2'000).ok());
  ASSERT_TRUE(fresh.ReadFrame(&in, 2'000).ok());
  EXPECT_EQ(in.request_id, 2u);
  EXPECT_EQ(injector.fired_count(), 1);
}

TEST(FaultTest, SendCorruptIsRejectedByTheReceiver) {
  net::TcpListener listener;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0).ok());
  common::Status server_read = common::Status::Ok();
  std::thread server([&] {
    auto accepted = listener.Accept();
    if (!accepted.ok()) return;
    net::FrameConn conn(std::move(accepted).value(), "server:victim");
    net::Frame frame;
    server_read = conn.ReadFrame(&frame, 2'000);
  });
  net::FrameConn conn = ConnectTo(listener.port());
  net::FaultInjector injector;
  FaultGuard guard(&injector);
  net::FaultRule rule;
  rule.action = net::FaultAction::kCorrupt;
  rule.direction = net::FaultDirection::kSend;
  rule.tag_contains = "client:test";
  injector.AddRule(rule);

  net::Frame out;
  out.type = net::FrameType::kExecute;
  out.payload = "payload";
  EXPECT_TRUE(conn.WriteFrame(out, 2'000).ok());  // bytes leave, corrupted
  server.join();
  EXPECT_FALSE(server_read.ok());
  EXPECT_EQ(server_read.code(), common::StatusCode::kUnavailable);
}

TEST(FaultTest, RulesMatchByTypeTagAndSkip) {
  net::FaultInjector injector;
  net::FaultRule rule;
  rule.action = net::FaultAction::kDrop;
  rule.direction = net::FaultDirection::kSend;
  rule.match_type = true;
  rule.type = net::FrameType::kStats;
  rule.tag_contains = "client:router";
  rule.skip = 1;
  rule.times = 2;
  injector.AddRule(rule);

  net::FaultRule fired;
  // Wrong type, wrong tag, wrong direction: no match.
  EXPECT_FALSE(injector.Match(net::FaultDirection::kSend,
                              net::FrameType::kPing, "client:router", &fired));
  EXPECT_FALSE(injector.Match(net::FaultDirection::kSend,
                              net::FrameType::kStats, "server:shardd",
                              &fired));
  EXPECT_FALSE(injector.Match(net::FaultDirection::kRecv,
                              net::FrameType::kStats, "client:router",
                              &fired));
  // First match is skipped, then two firings, then exhausted.
  EXPECT_FALSE(injector.Match(net::FaultDirection::kSend,
                              net::FrameType::kStats, "client:router",
                              &fired));
  EXPECT_TRUE(injector.Match(net::FaultDirection::kSend,
                             net::FrameType::kStats, "client:router",
                             &fired));
  EXPECT_TRUE(injector.Match(net::FaultDirection::kSend,
                             net::FrameType::kStats, "client:router",
                             &fired));
  EXPECT_FALSE(injector.Match(net::FaultDirection::kSend,
                              net::FrameType::kStats, "client:router",
                              &fired));
  EXPECT_EQ(injector.fired_count(), 2);
}

}  // namespace
}  // namespace zeus
