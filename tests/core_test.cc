// Unit tests for zeus::core — configuration grids (Table 4), cost model
// calibration, knob freezing, Pareto pruning, metrics (IoU rule of §2.1),
// window accuracy, instance conversion.

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/cost_model.h"
#include "core/executor.h"
#include "core/metrics.h"

namespace zeus::core {
namespace {

TEST(ConfigurationSpaceTest, BddGridIs64) {
  auto space = ConfigurationSpace::ForFamily(video::DatasetFamily::kBdd100kLike);
  EXPECT_EQ(space.size(), 64u);  // 4 x 4 x 4 (Table 4)
  EXPECT_EQ(space.NominalResolutions(),
            (std::vector<int>{150, 200, 250, 300}));
  EXPECT_EQ(space.NominalLengths(), (std::vector<int>{2, 4, 6, 8}));
  EXPECT_EQ(space.SamplingRates(), (std::vector<int>{1, 2, 4, 8}));
}

TEST(ConfigurationSpaceTest, ThumosGridIs27) {
  auto space =
      ConfigurationSpace::ForFamily(video::DatasetFamily::kThumos14Like);
  EXPECT_EQ(space.size(), 27u);  // 3 x 3 x 3 (Table 4)
}

TEST(ConfigurationSpaceTest, CostsMonotoneInResolutionAndLength) {
  auto space = ConfigurationSpace::ForFamily(video::DatasetFamily::kBdd100kLike);
  space.AttachCosts(CostModel{});
  // Same (length, rate): higher resolution must cost more.
  const Configuration* lo = nullptr;
  const Configuration* hi = nullptr;
  for (const Configuration& c : space.configs()) {
    if (c.nominal_segment_length == 8 && c.sampling_rate == 1) {
      if (c.nominal_resolution == 150) lo = &c;
      if (c.nominal_resolution == 300) hi = &c;
    }
  }
  ASSERT_NE(lo, nullptr);
  ASSERT_NE(hi, nullptr);
  EXPECT_LT(lo->gpu_seconds_per_invocation, hi->gpu_seconds_per_invocation);
}

TEST(ConfigurationSpaceTest, AlphasSumToOne) {
  auto space = ConfigurationSpace::ForFamily(video::DatasetFamily::kBdd100kLike);
  space.AttachCosts(CostModel{});
  double sum = 0;
  for (const Configuration& c : space.configs()) sum += c.alpha;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ConfigurationSpaceTest, FreezeKnobFixesMiddleValue) {
  auto space = ConfigurationSpace::ForFamily(video::DatasetFamily::kBdd100kLike);
  auto frozen = space.WithFrozenKnob(Knob::kResolution);
  EXPECT_EQ(frozen.size(), 16u);  // 4 lengths x 4 rates
  for (const Configuration& c : frozen.configs()) {
    EXPECT_EQ(c.nominal_resolution, 250);  // middle of {150,200,250,300}
  }
  auto frozen_rate = space.WithFrozenKnob(Knob::kSamplingRate);
  for (const Configuration& c : frozen_rate.configs()) {
    EXPECT_EQ(c.sampling_rate, 4);
  }
}

TEST(ConfigurationSpaceTest, SubsetRenumbers) {
  auto space = ConfigurationSpace::ForFamily(video::DatasetFamily::kBdd100kLike);
  auto sub = space.Subset({5, 17, 40});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.config(0).id, 0);
  EXPECT_EQ(sub.config(1).nominal_resolution,
            space.config(17).nominal_resolution);
}

TEST(ConfigurationSpaceTest, PruneToFrontierKeepsMonotoneAccuracy) {
  auto space = ConfigurationSpace::ForFamily(video::DatasetFamily::kBdd100kLike);
  space.AttachCosts(CostModel{});
  // Synthetic accuracies: correlated with cost plus deterministic wiggle.
  int i = 0;
  for (Configuration& c : *space.mutable_configs()) {
    c.validation_f1 = 0.3 + 0.6 * (c.gpu_seconds_per_invocation / 0.12) +
                      0.05 * ((i++ % 3) - 1);
  }
  auto frontier = space.PruneToFrontier(6);
  EXPECT_LE(frontier.size(), 6u);
  EXPECT_GE(frontier.size(), 2u);
  // Along the frontier (ordered fastest -> slowest), accuracy increases.
  for (size_t k = 1; k < frontier.size(); ++k) {
    EXPECT_GT(frontier.config(static_cast<int>(k)).validation_f1,
              frontier.config(static_cast<int>(k - 1)).validation_f1);
    EXPECT_LE(frontier.config(static_cast<int>(k)).throughput_fps,
              frontier.config(static_cast<int>(k - 1)).throughput_fps);
  }
}

TEST(CostModelTest, CalibratedToPaperNumbers) {
  CostModel m;
  // R3D at 480^2: 1/27 s per frame (§2).
  double per_frame = m.SegmentCost(480, 1) - m.invocation_overhead_s;
  EXPECT_NEAR(per_frame, 1.0 / 27.0, 1e-9);
  // 2D net ~5.9x faster per frame at the same resolution (§6.2).
  double frame2d = m.FrameCost(480) - m.invocation_overhead_s / 4.0;
  EXPECT_NEAR(per_frame / frame2d, 5.9, 1e-6);
  // Cost scales quadratically with resolution.
  EXPECT_NEAR(m.SegmentCost(240, 4) - m.invocation_overhead_s,
              (m.SegmentCost(480, 4) - m.invocation_overhead_s) / 4.0, 1e-9);
}

TEST(CostModelTest, LiteFilterCheaperThanFull) {
  CostModel m;
  EXPECT_LT(m.LiteSegmentCost(300, 8), m.SegmentCost(300, 8));
}

video::Video LabeledVideo(int frames, int from, int to) {
  video::Video v(frames, 2, 2);
  for (int f = from; f < to; ++f) v.SetLabel(f, video::ActionClass::kCrossRight);
  return v;
}

TEST(MetricsTest, PerfectPrediction) {
  auto v = LabeledVideo(64, 16, 48);
  FrameMask mask(64, 0);
  for (int f = 16; f < 48; ++f) mask[static_cast<size_t>(f)] = 1;
  auto m = EvaluateVideo(v, {video::ActionClass::kCrossRight}, mask,
                         EvalOptions{});
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.tp, 2);  // eval segments [16,32) and [32,48)
  EXPECT_EQ(m.tn, 2);
}

TEST(MetricsTest, AllNegativePredictionHasZeroRecall) {
  auto v = LabeledVideo(64, 16, 48);
  FrameMask mask(64, 0);
  auto m = EvaluateVideo(v, {video::ActionClass::kCrossRight}, mask,
                         EvalOptions{});
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(MetricsTest, IouThresholdGovernsSegmentLabels) {
  // Action covers exactly half of one eval segment: not > 0.5 -> negative.
  auto v = LabeledVideo(32, 0, 8);
  FrameMask mask(32, 0);
  EvalOptions opts;
  opts.eval_segment_frames = 16;
  auto m = EvaluateVideo(v, {video::ActionClass::kCrossRight}, mask, opts);
  EXPECT_EQ(m.fn, 0);  // 8/16 == 0.5 is not a GT positive
}

TEST(MetricsTest, FalsePositivesCounted) {
  auto v = LabeledVideo(32, 0, 0);
  FrameMask mask(32, 1);
  auto m = EvaluateVideo(v, {video::ActionClass::kCrossRight}, mask,
                         EvalOptions{});
  EXPECT_EQ(m.fp, 2);
  EXPECT_EQ(m.precision, 0.0);
}

TEST(MetricsTest, PooledOverVideos) {
  auto v1 = LabeledVideo(32, 0, 16);
  auto v2 = LabeledVideo(32, 16, 32);
  FrameMask m1(32, 0), m2(32, 0);
  for (int f = 0; f < 16; ++f) m1[static_cast<size_t>(f)] = 1;
  auto m = EvaluateVideos({&v1, &v2}, {video::ActionClass::kCrossRight},
                          {m1, m2}, EvalOptions{});
  EXPECT_EQ(m.tp, 1);
  EXPECT_EQ(m.fn, 1);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(MetricsTest, WindowAccuracyConventions) {
  auto v = LabeledVideo(100, 40, 60);
  FrameMask mask(100, 0);
  std::vector<video::ActionClass> t{video::ActionClass::kCrossRight};
  // Empty window, nothing predicted: perfect.
  EXPECT_DOUBLE_EQ(WindowAccuracy(v, t, mask, 0, 30), 1.0);
  // Action missed entirely: 0.
  EXPECT_DOUBLE_EQ(WindowAccuracy(v, t, mask, 30, 70), 0.0);
  // Perfect hit: 1.
  for (int f = 40; f < 60; ++f) mask[static_cast<size_t>(f)] = 1;
  EXPECT_DOUBLE_EQ(WindowAccuracy(v, t, mask, 30, 70), 1.0);
}

TEST(MetricsTest, MaskToInstancesMergesRuns) {
  FrameMask mask{0, 1, 1, 0, 1, 0};
  auto inst = MaskToInstances(mask);
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst[0].start, 1);
  EXPECT_EQ(inst[0].end, 3);
  EXPECT_EQ(inst[1].start, 4);
}

TEST(MetricsTest, MeanInstanceIou) {
  auto v = LabeledVideo(100, 20, 40);
  FrameMask mask(100, 0);
  for (int f = 25; f < 40; ++f) mask[static_cast<size_t>(f)] = 1;
  double iou = MeanInstanceIou(v, {video::ActionClass::kCrossRight}, mask);
  EXPECT_NEAR(iou, 15.0 / 20.0, 1e-9);
}

TEST(RunResultTest, ThroughputDividesFramesByGpuSeconds) {
  RunResult r;
  r.total_frames = 1000;
  r.gpu_seconds = 2.0;
  EXPECT_DOUBLE_EQ(r.ThroughputFps(), 500.0);
}

TEST(ConfigHistogramTest, TercilesAndResolutionSplit) {
  auto space = ConfigurationSpace::ForFamily(video::DatasetFamily::kBdd100kLike);
  space.AttachCosts(CostModel{});
  RunResult r;
  r.frames_per_config[space.FastestId()] = 600;
  r.frames_per_config[space.SlowestId()] = 400;
  auto h = SummarizeConfigUsage(space, r);
  EXPECT_NEAR(h.fast_pct, 60.0, 1e-9);
  EXPECT_NEAR(h.slow_pct, 40.0, 1e-9);
  EXPECT_NEAR(h.fast_pct + h.mid_pct + h.slow_pct, 100.0, 1e-9);
  EXPECT_NEAR(h.low_res_pct + h.high_res_pct, 100.0, 1e-9);
}

}  // namespace
}  // namespace zeus::core
