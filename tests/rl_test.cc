// Unit tests for zeus::rl — replay buffer cyclicity and delayed commits,
// reward functions (Eq. 2 scenarios of Fig. 7 and Alg. 2 signs), DQN on a
// trivially learnable contextual bandit, env traversal invariants.

#include <gtest/gtest.h>

#include "apfg/feature_cache.h"
#include "common/rng.h"
#include "core/configuration.h"
#include "rl/dqn_agent.h"
#include "rl/env.h"
#include "rl/replay_buffer.h"
#include "rl/reward.h"

namespace zeus::rl {
namespace {

Experience MakeExp(float reward) {
  Experience e;
  e.state = {0.0f};
  e.next_state = {0.0f};
  e.reward = reward;
  return e;
}

TEST(ReplayBufferTest, CyclicOverwrite) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) buf.Push(MakeExp(static_cast<float>(i)));
  EXPECT_EQ(buf.size(), 3u);
  // Contents are the last three pushes (0,1 overwritten by 3,4).
  float sum = 0;
  for (size_t i = 0; i < buf.size(); ++i) sum += buf.at(i).reward;
  EXPECT_FLOAT_EQ(sum, 2 + 3 + 4);
}

TEST(ReplayBufferTest, DelayedCommitAddsReward) {
  ReplayBuffer buf(10);
  buf.Stage(MakeExp(0.5f));
  buf.Stage(MakeExp(-0.25f));
  EXPECT_EQ(buf.StagedCount(), 2u);
  EXPECT_EQ(buf.size(), 0u);
  buf.CommitStaged(1.0f);  // aggregate reward patched onto each
  EXPECT_EQ(buf.StagedCount(), 0u);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_FLOAT_EQ(buf.at(0).reward, 1.5f);
  EXPECT_FLOAT_EQ(buf.at(1).reward, 0.75f);
}

TEST(ReplayBufferTest, DiscardStagedDropsExperiences) {
  ReplayBuffer buf(10);
  buf.Stage(MakeExp(1.0f));
  buf.DiscardStaged();
  buf.CommitStaged(0.0f);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ReplayBufferTest, SampleReturnsStoredPointers) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 4; ++i) buf.Push(MakeExp(static_cast<float>(i)));
  common::Rng rng(1);
  auto sample = buf.Sample(16, &rng);
  EXPECT_EQ(sample.size(), 16u);
  for (const Experience* e : sample) {
    EXPECT_GE(e->reward, 0.0f);
    EXPECT_LE(e->reward, 3.0f);
  }
}

core::Configuration MakeConfig(int id, double alpha) {
  core::Configuration c;
  c.id = id;
  c.alpha = alpha;
  return c;
}

TEST(RewardTest, LocalRewardFavoursSlowOnAction) {
  // Fig. 7a: fast configuration on an action window must be penalized
  // relative to a slow one.
  RewardOptions opts;
  opts.local_weight = 1.0;
  RewardFunction reward(opts, /*num_configs=*/4);
  core::Configuration fast = MakeConfig(0, 0.7);  // fastness 2.8
  core::Configuration slow = MakeConfig(1, 0.05);  // fastness 0.2
  EXPECT_LT(reward.LocalReward(fast, /*window_has_action=*/true),
            reward.LocalReward(slow, true));
  EXPECT_LT(reward.LocalReward(fast, true), 0.0);  // beta cutoff exceeded
}

TEST(RewardTest, LocalRewardFavoursFastOnEmpty) {
  // Fig. 7b/7c: more frames skipped in an empty region earns more reward;
  // slow configurations are not penalized.
  RewardOptions opts;
  opts.local_weight = 1.0;
  RewardFunction reward(opts, 4);
  core::Configuration fast = MakeConfig(0, 0.7);
  core::Configuration slow = MakeConfig(1, 0.05);
  EXPECT_GT(reward.LocalReward(fast, false), reward.LocalReward(slow, false));
  EXPECT_GE(reward.LocalReward(slow, false), 0.0);
}

TEST(RewardTest, AggregateRewardSigns) {
  // Alg. 2: meeting the target yields a reward that grows as achieved
  // accuracy approaches the target from above; missing it yields a penalty
  // proportional to the deficit.
  const double target = 0.8;
  EXPECT_GT(RewardFunction::AggregateReward(0.81, target),
            RewardFunction::AggregateReward(0.99, target));
  EXPECT_NEAR(RewardFunction::AggregateReward(1.0, target), 0.0, 1e-9);
  EXPECT_NEAR(RewardFunction::AggregateReward(0.8, target), 1.0, 1e-9);
  EXPECT_LT(RewardFunction::AggregateReward(0.5, target), 0.0);
  EXPECT_LT(RewardFunction::AggregateReward(0.3, target),
            RewardFunction::AggregateReward(0.6, target));
}

TEST(RewardTest, AggregateOnlyModeZeroesLocal) {
  RewardOptions opts;
  opts.mode = RewardOptions::Mode::kAggregateOnly;
  RewardFunction reward(opts, 4);
  EXPECT_EQ(reward.LocalReward(MakeConfig(0, 0.5), true), 0.0);
}

TEST(DqnAgentTest, GreedyIsArgmaxOfQValues) {
  common::Rng rng(2);
  DqnAgent::Options opts;
  opts.state_dim = 3;
  opts.num_actions = 4;
  DqnAgent agent(opts, &rng);
  agent.set_epsilon(0.0f);
  std::vector<float> s{0.1f, -0.2f, 0.3f};
  auto q = agent.QValues(s);
  int best = 0;
  for (int a = 1; a < 4; ++a)
    if (q[static_cast<size_t>(a)] > q[static_cast<size_t>(best)]) best = a;
  EXPECT_EQ(agent.SelectAction(s), best);
}

TEST(DqnAgentTest, EpsilonDecaysToFloor) {
  common::Rng rng(3);
  DqnAgent::Options opts;
  opts.state_dim = 2;
  opts.num_actions = 2;
  opts.epsilon_decay = 0.5f;
  opts.epsilon_end = 0.1f;
  DqnAgent agent(opts, &rng);
  for (int i = 0; i < 20; ++i) agent.EndEpisode();
  EXPECT_FLOAT_EQ(agent.epsilon(), 0.1f);
}

TEST(DqnAgentTest, LearnsContextualBandit) {
  // State s in {(1,0), (0,1)}; correct action = index of the hot bit;
  // reward 1 for correct, 0 otherwise, episodic (done=true). The agent's
  // greedy policy must recover the mapping.
  common::Rng rng(4);
  DqnAgent::Options opts;
  opts.state_dim = 2;
  opts.num_actions = 2;
  opts.batch_size = 16;
  opts.lr = 5e-3f;
  DqnAgent agent(opts, &rng);
  ReplayBuffer buf(512);
  common::Rng data_rng(5);
  for (int i = 0; i < 256; ++i) {
    int ctx = data_rng.NextInt(0, 1);
    int act = data_rng.NextInt(0, 1);
    Experience e;
    e.state = {ctx == 0 ? 1.0f : 0.0f, ctx == 1 ? 1.0f : 0.0f};
    e.action = act;
    e.reward = act == ctx ? 1.0f : 0.0f;
    e.next_state = e.state;
    e.done = true;
    buf.Push(std::move(e));
  }
  for (int step = 0; step < 300; ++step) agent.TrainStep(buf);
  agent.set_epsilon(0.0f);
  EXPECT_EQ(agent.GreedyAction({1.0f, 0.0f}), 0);
  EXPECT_EQ(agent.GreedyAction({0.0f, 1.0f}), 1);
}

TEST(DqnAgentTest, DoubleDqnLearnsContextualBandit) {
  // Same bandit as above, but with Double DQN target decoupling: the
  // variant must converge to the same policy.
  common::Rng rng(4);
  DqnAgent::Options opts;
  opts.state_dim = 2;
  opts.num_actions = 2;
  opts.batch_size = 16;
  opts.lr = 5e-3f;
  opts.double_dqn = true;
  DqnAgent agent(opts, &rng);
  ReplayBuffer buf(512);
  common::Rng data_rng(5);
  for (int i = 0; i < 256; ++i) {
    int ctx = data_rng.NextInt(0, 1);
    int act = data_rng.NextInt(0, 1);
    Experience e;
    e.state = {ctx == 0 ? 1.0f : 0.0f, ctx == 1 ? 1.0f : 0.0f};
    e.action = act;
    e.reward = act == ctx ? 1.0f : 0.0f;
    e.next_state = e.state;
    e.done = true;
    buf.Push(std::move(e));
  }
  for (int step = 0; step < 300; ++step) agent.TrainStep(buf);
  agent.set_epsilon(0.0f);
  EXPECT_EQ(agent.GreedyAction({1.0f, 0.0f}), 0);
  EXPECT_EQ(agent.GreedyAction({0.0f, 1.0f}), 1);
}

TEST(DqnAgentTest, LinearEpsilonScheduleReachesFloorExactly) {
  common::Rng rng(4);
  DqnAgent::Options opts;
  opts.epsilon_start = 1.0f;
  opts.epsilon_end = 0.2f;
  opts.epsilon_schedule = EpsilonSchedule::kLinear;
  opts.epsilon_linear_episodes = 4;
  DqnAgent agent(opts, &rng);
  std::vector<float> seen;
  for (int i = 0; i < 6; ++i) {
    agent.EndEpisode();
    seen.push_back(agent.epsilon());
  }
  EXPECT_NEAR(seen[0], 0.8f, 1e-5);
  EXPECT_NEAR(seen[1], 0.6f, 1e-5);
  EXPECT_NEAR(seen[3], 0.2f, 1e-5);
  EXPECT_NEAR(seen[5], 0.2f, 1e-5);  // clamps at the floor
}

TEST(PrioritizedReplayTest, NewExperiencesGetMaxPriority) {
  PrioritizedReplayBuffer buf(8);
  Experience e;
  e.state = {1.0f};
  e.next_state = {1.0f};
  buf.Push(e);
  buf.Push(e);
  EXPECT_FLOAT_EQ(buf.priority(0), 1.0f);
  buf.UpdatePriorities({0}, {4.0f});
  EXPECT_FLOAT_EQ(buf.priority(0), 4.0f);
  // The max priority is sticky: the next insert inherits it.
  buf.Push(e);
  EXPECT_FLOAT_EQ(buf.priority(2), 4.0f);
}

TEST(PrioritizedReplayTest, SamplingIsProportionalToPriority) {
  PrioritizedReplayBuffer::Options popts;
  popts.alpha = 1.0f;
  popts.epsilon = 1e-6f;
  PrioritizedReplayBuffer buf(4, popts);
  Experience e;
  e.state = {0.0f};
  e.next_state = {0.0f};
  for (int i = 0; i < 4; ++i) buf.Push(e);
  // Index 3 gets 7x the priority mass of each other slot.
  buf.UpdatePriorities({0, 1, 2, 3}, {1.0f, 1.0f, 1.0f, 7.0f});
  common::Rng rng(11);
  int hits = 0;
  const int kDraws = 4000;
  auto sample = buf.SampleBatch(kDraws, &rng);
  for (size_t idx : sample.indices) hits += idx == 3 ? 1 : 0;
  // Expected share 7/10; allow generous slack for sampling noise.
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.7, 0.05);
  // High-priority samples carry smaller importance weights.
  float w_hi = 0.0f, w_lo = 0.0f;
  for (size_t i = 0; i < sample.indices.size(); ++i) {
    if (sample.indices[i] == 3) w_hi = sample.weights[i];
    if (sample.indices[i] == 0) w_lo = sample.weights[i];
  }
  EXPECT_LT(w_hi, w_lo);
  EXPECT_LE(w_lo, 1.0f + 1e-5f);
}

TEST(PrioritizedReplayTest, UniformWhenAllPrioritiesEqual) {
  PrioritizedReplayBuffer buf(4);
  Experience e;
  e.state = {0.0f};
  e.next_state = {0.0f};
  for (int i = 0; i < 4; ++i) buf.Push(e);
  common::Rng rng(13);
  auto sample = buf.SampleBatch(2000, &rng);
  std::vector<int> counts(4, 0);
  for (size_t idx : sample.indices) counts[idx]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 2000.0, 0.25, 0.05);
  }
  for (float w : sample.weights) EXPECT_NEAR(w, 1.0f, 1e-4);
}

TEST(PrioritizedReplayTest, AgentLearnsBanditWithPer) {
  common::Rng rng(4);
  DqnAgent::Options opts;
  opts.state_dim = 2;
  opts.num_actions = 2;
  opts.batch_size = 16;
  opts.lr = 5e-3f;
  DqnAgent agent(opts, &rng);
  PrioritizedReplayBuffer buf(512);
  common::Rng data_rng(5);
  for (int i = 0; i < 256; ++i) {
    int ctx = data_rng.NextInt(0, 1);
    int act = data_rng.NextInt(0, 1);
    Experience e;
    e.state = {ctx == 0 ? 1.0f : 0.0f, ctx == 1 ? 1.0f : 0.0f};
    e.action = act;
    e.reward = act == ctx ? 1.0f : 0.0f;
    e.next_state = e.state;
    e.done = true;
    buf.Push(std::move(e));
  }
  for (int step = 0; step < 300; ++step) agent.TrainStep(buf);
  agent.set_epsilon(0.0f);
  EXPECT_EQ(agent.GreedyAction({1.0f, 0.0f}), 0);
  EXPECT_EQ(agent.GreedyAction({0.0f, 1.0f}), 1);
}

// --- VideoEnv tests over a tiny real pipeline -----------------------------

struct EnvFixture : public ::testing::Test {
  void SetUp() override {
    auto profile =
        video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
    profile.num_videos = 3;
    profile.frames_per_video = 120;
    dataset = std::make_unique<video::SyntheticDataset>(
        video::SyntheticDataset::Generate(profile, 21));
    for (size_t i = 0; i < dataset->num_videos(); ++i) {
      videos.push_back(&dataset->video(i));
    }
    space = core::ConfigurationSpace::ForFamily(profile.family);
    space.AttachCosts(core::CostModel{});
    rng = std::make_unique<common::Rng>(6);
    apfg = std::make_unique<apfg::Apfg>(apfg::ApfgTrainOptions{}, true,
                                        rng.get());
    cache = std::make_unique<apfg::FeatureCache>(apfg.get());
  }

  std::unique_ptr<video::SyntheticDataset> dataset;
  std::vector<const video::Video*> videos;
  core::ConfigurationSpace space;
  std::unique_ptr<common::Rng> rng;
  std::unique_ptr<apfg::Apfg> apfg;
  std::unique_ptr<apfg::FeatureCache> cache;
};

TEST_F(EnvFixture, StateDimIncludesExtras) {
  VideoEnv::Options opts;
  opts.feature_dim = 32;
  VideoEnv env(videos, &space, cache.get(),
               {video::ActionClass::kCrossRight}, opts);
  EXPECT_EQ(env.state_dim(), 32 + 1 + static_cast<int>(space.size()) + 1);
}

TEST_F(EnvFixture, TraversalCoversAllFramesExactlyOnce) {
  VideoEnv::Options opts;
  VideoEnv env(videos, &space, cache.get(),
               {video::ActionClass::kCrossRight}, opts);
  env.ResetSequential();
  int guard = 0;
  while (!env.done() && guard++ < 10000) {
    env.Step(space.FastestId());
  }
  EXPECT_TRUE(env.done());
  long covered = 0;
  for (const auto& [cfg, frames] : env.invocation_log()) {
    (void)cfg;
    covered += frames;
  }
  EXPECT_EQ(covered, env.total_frames());
}

TEST_F(EnvFixture, WindowsAreClampedToVideoEnd) {
  VideoEnv::Options opts;
  VideoEnv env(videos, &space, cache.get(),
               {video::ActionClass::kCrossRight}, opts);
  env.ResetSequential();
  while (!env.done()) {
    auto res = env.Step(space.SlowestId());
    EXPECT_LE(res.window_end,
              env.video(res.video_index).num_frames());
    EXPECT_LT(res.window_start, res.window_end);
  }
}

TEST_F(EnvFixture, StateVectorHasDeclaredSize) {
  VideoEnv::Options opts;
  VideoEnv env(videos, &space, cache.get(),
               {video::ActionClass::kCrossRight}, opts);
  env.ResetSequential();
  EXPECT_EQ(static_cast<int>(env.state().size()), env.state_dim());
  env.Step(0);
  EXPECT_EQ(static_cast<int>(env.state().size()), env.state_dim());
}

}  // namespace
}  // namespace zeus::rl
