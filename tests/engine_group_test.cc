// Tests for the sharded serving layer and the scheduling underneath it:
// ShardRing routing stability and minimal rebalance movement,
// AdmissionQueue priority/fairness ordering (deterministic, no threads),
// EngineGroup bit-identity against a single engine under concurrent
// mixed-shard submits, priority jumping and per-dataset fairness on a live
// engine, and mid-round cancellation inside the batched executor. The bar
// everywhere: sharding, priorities and cancellation change wall time and
// cost accounting, never answers.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/batched_executor.h"
#include "core/cancellation.h"
#include "core/zeusdb.h"
#include "engine/admission_queue.h"
#include "engine/engine_group.h"
#include "engine/query_engine.h"
#include "engine/shard_ring.h"
#include "video/dataset.h"

namespace zeus {
namespace {

namespace fs = std::filesystem;

core::QueryPlanner::Options FastPlannerOptions() {
  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 4;
  opts.profile.max_windows_per_config = 60;
  opts.trainer.episodes = 3;
  opts.trainer.min_buffer = 32;
  opts.trainer.agent.batch_size = 32;
  opts.max_rl_configs = 4;
  return opts;
}

// Dataset "a" is sized so one batched localization takes long enough to
// land a cancel mid-run; "b" stays small so the scheduling tests are quick.
video::SyntheticDataset MakeDatasetA() {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 16;
  profile.frames_per_video = 500;
  return video::SyntheticDataset::Generate(profile, 58);
}

video::SyntheticDataset MakeDatasetB() {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 12;
  profile.frames_per_video = 200;
  return video::SyntheticDataset::Generate(profile, 91);
}

core::ActionQuery CrossRightQuery(double accuracy = 0.8) {
  core::ActionQuery q;
  q.action_classes = {video::ActionClass::kCrossRight};
  q.accuracy_target = accuracy;
  return q;
}

void ExpectSameOutcome(const engine::QueryResult& a,
                       const engine::QueryResult& b) {
  EXPECT_TRUE(engine::SameSegments(a, b))
      << a.segments.size() << " vs " << b.segments.size() << " segments";
  EXPECT_EQ(a.metrics.tp, b.metrics.tp);
  EXPECT_EQ(a.metrics.fp, b.metrics.fp);
  EXPECT_EQ(a.metrics.fn, b.metrics.fn);
  EXPECT_EQ(a.metrics.tn, b.metrics.tn);
}

// ---- ShardRing -------------------------------------------------------------

TEST(ShardRingTest, SameKeyAlwaysSameShard) {
  engine::ShardRing ring(4);
  engine::ShardRing twin(4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "dataset-" + std::to_string(i);
    const int shard = ring.ShardFor(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    // Stable across calls and across identically-constructed rings: the
    // property that keeps one dataset's plan cache hot on one shard.
    EXPECT_EQ(ring.ShardFor(key), shard);
    EXPECT_EQ(twin.ShardFor(key), shard);
  }
}

TEST(ShardRingTest, VirtualNodesSpreadKeysAcrossShards) {
  engine::ShardRing ring(4);
  std::vector<int> counts(4, 0);
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[static_cast<size_t>(ring.ShardFor("ds-" + std::to_string(i)))];
  }
  for (int c : counts) {
    // Expect ~25% each; 64 virtual nodes keep the spread well inside
    // [5%, 55%].
    EXPECT_GT(c, kKeys / 20);
    EXPECT_LT(c, kKeys * 11 / 20);
  }
}

TEST(ShardRingTest, GrowingTheRingMovesOnlyTheNewShardsShare) {
  engine::ShardRing before(4);
  engine::ShardRing after(5);
  const int kKeys = 2000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "ds-" + std::to_string(i);
    const int old_shard = before.ShardFor(key);
    const int new_shard = after.ShardFor(key);
    if (new_shard != old_shard) {
      ++moved;
      // Consistent hashing: a key either stays put or moves to the ADDED
      // shard — existing shards never trade keys with each other.
      EXPECT_EQ(new_shard, 4) << key;
    }
  }
  // Expected movement is ~1/5 of the keys (the new shard's share), not the
  // ~4/5 a mod-N rehash would shuffle.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys * 35 / 100);
}

TEST(ShardRingTest, DiffOwnersMatchesBruteForceAndMovesOnlyToAddedShard) {
  engine::ShardRing before(4);
  engine::ShardRing after(5);
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) keys.push_back("ds-" + std::to_string(i));

  auto moves = before.DiffOwners(after, keys);
  std::set<std::string> moved;
  for (const auto& m : moves) {
    EXPECT_EQ(m.from, before.ShardFor(m.key));
    EXPECT_EQ(m.to, after.ShardFor(m.key));
    EXPECT_NE(m.from, m.to);
    // Growing the ring: a moved key always lands on the added shard.
    EXPECT_EQ(m.to, 4) << m.key;
    moved.insert(m.key);
  }
  // The diff is exhaustive: every key it omits really kept its owner.
  for (const std::string& key : keys) {
    if (!moved.count(key)) {
      EXPECT_EQ(before.ShardFor(key), after.ShardFor(key)) << key;
    }
  }
  EXPECT_GT(moves.size(), 0u);
  EXPECT_LT(moves.size(), keys.size() * 35 / 100);
}

// ---- AdmissionQueue (deterministic scheduling rules) -----------------------

int PayloadValue(const engine::AdmissionQueue::Payload& p) {
  return *std::static_pointer_cast<int>(p);
}

engine::AdmissionQueue::Payload MakePayload(int v) {
  return std::make_shared<int>(v);
}

TEST(AdmissionQueueTest, HigherPriorityPopsFirstAcrossAndWithinTenants) {
  engine::AdmissionQueue q;
  q.Push("a", 0, MakePayload(1));
  q.Push("a", 0, MakePayload(2));
  q.Push("b", 5, MakePayload(3));  // priority beats tenant rotation
  q.Push("a", 5, MakePayload(4));  // and jumps the line within a tenant
  EXPECT_EQ(q.size(), 4u);
  // Both priority-5 items first (round-robin between their tenants), then
  // tenant a's FIFO backlog.
  std::multiset<int> high = {PayloadValue(q.Pop()), PayloadValue(q.Pop())};
  EXPECT_EQ(high, (std::multiset<int>{3, 4}));
  EXPECT_EQ(PayloadValue(q.Pop()), 1);
  EXPECT_EQ(PayloadValue(q.Pop()), 2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(AdmissionQueueTest, RoundRobinPreventsFloodStarvation) {
  engine::AdmissionQueue q;
  for (int i = 0; i < 4; ++i) q.Push("flood", 0, MakePayload(i));
  q.Push("quiet", 0, MakePayload(100));
  q.Push("quiet", 0, MakePayload(101));
  std::vector<int> order;
  while (!q.empty()) order.push_back(PayloadValue(q.Pop()));
  EXPECT_EQ(order, (std::vector<int>{0, 100, 1, 101, 2, 3}));
}

TEST(AdmissionQueueTest, WeightsGrantConsecutivePops) {
  engine::AdmissionQueue q;
  q.SetWeight("heavy", 2);
  for (int i = 0; i < 4; ++i) q.Push("heavy", 0, MakePayload(i));
  q.Push("light", 0, MakePayload(100));
  q.Push("light", 0, MakePayload(101));
  std::vector<int> order;
  while (!q.empty()) order.push_back(PayloadValue(q.Pop()));
  // heavy holds the turn for two pops per rotation.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 100, 2, 3, 101}));
}

TEST(AdmissionQueueTest, AgingPromotesAtExactlyTheThresholdBoundary) {
  engine::AdmissionQueue q;
  // One low-priority item with aging (one band per 2 pops waited), buried
  // under a deep high-priority backlog.
  q.Push("low", 0, /*aging_threshold=*/2, MakePayload(999));
  for (int i = 0; i < 20; ++i) q.Push("hi", 5, MakePayload(i));
  // The priority gap is 5 and the threshold 2, so the boost reaches the
  // flood's band after exactly 10 pops; the round-robin rotation then
  // serves "low" on the very next pop. Fully deterministic: logical time
  // is the pop count, no threads, no clocks.
  for (int pop = 0; pop < 10; ++pop) {
    ASSERT_LT(PayloadValue(q.Pop()), 10) << "low popped early at " << pop;
  }
  EXPECT_EQ(PayloadValue(q.Pop()), 999);
}

TEST(AdmissionQueueTest, AgedTicketCompletesUnderContinuousFlood) {
  engine::AdmissionQueue q;
  q.Push("low", 0, /*aging_threshold=*/3, MakePayload(999));
  // Continuous flood: every pop is immediately backfilled with a fresh
  // high-priority item, so without aging "low" would starve forever.
  q.Push("hi", 5, MakePayload(0));
  int pops = 0;
  bool popped_low = false;
  while (!popped_low && pops < 100) {
    popped_low = PayloadValue(q.Pop()) == 999;
    ++pops;
    q.Push("hi", 5, MakePayload(pops));
  }
  EXPECT_TRUE(popped_low);
  // The monotonic boost bounds the wait: gap (5) * threshold (3) pops to
  // reach the flood's band, plus one rotation to win the tie.
  EXPECT_LE(pops, 5 * 3 + 2);
}

TEST(AdmissionQueueTest, ZeroThresholdNeverAges) {
  engine::AdmissionQueue q;
  q.Push("low", 0, /*aging_threshold=*/0, MakePayload(999));
  for (int i = 0; i < 50; ++i) q.Push("hi", 1, MakePayload(i));
  for (int i = 0; i < 50; ++i) {
    ASSERT_NE(PayloadValue(q.Pop()), 999) << "unaged item jumped at " << i;
  }
  EXPECT_EQ(PayloadValue(q.Pop()), 999);
}

TEST(AdmissionQueueTest, PurgeRemovesMatchingItems) {
  engine::AdmissionQueue q;
  q.Push("a", 0, MakePayload(1));
  q.Push("a", 0, MakePayload(2));
  q.Push("b", 0, MakePayload(3));
  EXPECT_EQ(q.Purge([](const engine::AdmissionQueue::Payload& p) {
              return PayloadValue(p) == 2;
            }),
            1u);
  EXPECT_EQ(q.size(), 2u);
  std::multiset<int> rest = {PayloadValue(q.Pop()), PayloadValue(q.Pop())};
  EXPECT_EQ(rest, (std::multiset<int>{1, 3}));
}

// ---- EngineGroup / live engine ---------------------------------------------

// Shared fixture: one persisted-plan reference engine whose planner runs
// feed the whole suite (sharded groups and scheduling engines reload the
// checkpoints from disk instead of re-training).
class EngineGroupTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process dir: two builds of this suite (e.g. a Release and an
    // ASan run side by side) must not wipe each other's fixture plans
    // mid-test and force a replan.
    persist_dir_ = new std::string(testing::TempDir() + "/zeus_group_plans_" +
                                   std::to_string(::getpid()));
    fs::remove_all(*persist_dir_);
    fs::create_directories(*persist_dir_);

    engine::QueryEngine::Options opts;
    opts.num_workers = 2;
    opts.planner = FastPlannerOptions();
    opts.cache.persist_dir = *persist_dir_;
    ref_engine_ = new engine::QueryEngine(opts);
    ASSERT_TRUE(ref_engine_->RegisterDataset("a", MakeDatasetA()).ok());
    ASSERT_TRUE(ref_engine_->RegisterDataset("b", MakeDatasetB()).ok());

    auto ra = ref_engine_->Execute("a", CrossRightQuery());
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ref_a_ = new engine::QueryResult(ra.value());
    auto rb = ref_engine_->Execute("b", CrossRightQuery());
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    ref_b_ = new engine::QueryResult(rb.value());
  }

  static void TearDownTestSuite() {
    delete ref_engine_;
    delete ref_a_;
    delete ref_b_;
    // Per-process dirs would otherwise accumulate in TempDir.
    std::error_code ec;
    fs::remove_all(*persist_dir_, ec);
    delete persist_dir_;
    ref_engine_ = nullptr;
    ref_a_ = nullptr;
    ref_b_ = nullptr;
    persist_dir_ = nullptr;
  }

  static engine::EngineGroup::Options GroupOptions(int shards) {
    engine::EngineGroup::Options gopts;
    gopts.num_shards = shards;
    gopts.engine.num_workers = 2;
    gopts.engine.planner = FastPlannerOptions();
    gopts.engine.cache.persist_dir = *persist_dir_;
    return gopts;
  }

  static std::string* persist_dir_;
  static engine::QueryEngine* ref_engine_;
  static engine::QueryResult* ref_a_;
  static engine::QueryResult* ref_b_;
};

std::string* EngineGroupTest::persist_dir_ = nullptr;
engine::QueryEngine* EngineGroupTest::ref_engine_ = nullptr;
engine::QueryResult* EngineGroupTest::ref_a_ = nullptr;
engine::QueryResult* EngineGroupTest::ref_b_ = nullptr;

TEST_F(EngineGroupTest, ConcurrentMixedShardSubmitsMatchSingleEngine) {
  engine::EngineGroup group(GroupOptions(4));
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  ASSERT_TRUE(group.RegisterDataset("b", MakeDatasetB()).ok());

  // Routing stability: the home shard answers HasDataset, the others do
  // not even know the name.
  const int home_a = group.ShardFor("a");
  const int home_b = group.ShardFor("b");
  for (int s = 0; s < group.num_shards(); ++s) {
    EXPECT_EQ(group.shard(s).HasDataset("a"), s == home_a);
    EXPECT_EQ(group.shard(s).HasDataset("b"), s == home_b);
  }

  std::vector<engine::QueryTicket> tickets;
  for (int i = 0; i < 3; ++i) {
    auto ta = group.Submit("a", CrossRightQuery());
    auto tb = group.Submit("b", CrossRightQuery());
    ASSERT_TRUE(ta.ok()) << ta.status().ToString();
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tickets.push_back(ta.value());
    tickets.push_back(tb.value());
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const auto& r = tickets[i].Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Bit-identical to the single-engine reference: sharding changes which
    // threads run the query, never the answer.
    ExpectSameOutcome(r.value(), i % 2 == 0 ? *ref_a_ : *ref_b_);
    EXPECT_EQ(r.value().plan_seconds, 0.0);
  }
  // Every plan came off disk; sharding must not trigger replanning.
  EXPECT_EQ(group.planner_runs(), 0);
  EXPECT_GE(group.disk_loads(), 2);
  // The plans live only on their home shards.
  for (int s = 0; s < group.num_shards(); ++s) {
    EXPECT_EQ(group.shard(s).CachedPlan("a", CrossRightQuery()) != nullptr,
              s == home_a);
  }
}

TEST_F(EngineGroupTest, ZeusDbNumShardsKeepsAnswersIdentical) {
  core::ZeusDb::Options options = GroupOptions(3);
  core::ZeusDb db(options);
  ASSERT_TRUE(db.RegisterDataset("a", MakeDatasetA()).ok());
  auto r = db.Execute("a", CrossRightQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().plan_seconds, 0.0);  // reloaded from the fixture's disk
  ExpectSameOutcome(r.value(), *ref_a_);
  EXPECT_EQ(db.group().num_shards(), 3);
  EXPECT_EQ(db.group().ShardFor("a"), db.group().ShardFor("a"));
}

// Waits for `blocker` to be claimed by the engine's single worker, runs
// `submit`, and reports whether the blocker was STILL running afterwards.
// True means every submitted ticket entered the queue before the first
// pop, so the dequeue order is fully determined by the scheduling rules;
// false means the blocker finished mid-submission (heavily loaded machine)
// and ordering is unobservable — callers skip rather than flake.
template <typename SubmitFn>
bool SubmittedBehindBlocker(engine::QueryTicket& blocker, SubmitFn submit) {
  while (blocker.state() == engine::QueryState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  submit();
  return !blocker.done();
}

TEST_F(EngineGroupTest, PriorityJumpsTheQueue) {
  engine::QueryEngine::Options opts;
  opts.num_workers = 1;
  opts.planner = FastPlannerOptions();
  opts.cache.persist_dir = *persist_dir_;
  engine::QueryEngine one(opts);
  ASSERT_TRUE(one.RegisterDataset("b", MakeDatasetB()).ok());

  // A cold key pins the single worker inside the planner, so everything
  // submitted below queues behind it.
  auto blocker = one.Submit("b", CrossRightQuery(0.77));
  ASSERT_TRUE(blocker.ok());

  common::Result<engine::QueryTicket> low(common::Status::Internal("unset"));
  common::Result<engine::QueryTicket> high(common::Status::Internal("unset"));
  const bool ordered = SubmittedBehindBlocker(blocker.value(), [&] {
    low = one.Submit("b", CrossRightQuery());
    engine::QueryOptions high_opts;
    high_opts.priority = 5;
    high = one.Submit("b", CrossRightQuery(), high_opts);
  });
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  if (!ordered) {
    ASSERT_TRUE(low.value().Wait().ok());
    ASSERT_TRUE(high.value().Wait().ok());
    GTEST_SKIP() << "blocker finished before submissions; queue order "
                    "unobservable on this run";
  }

  // Submitted after `low`, but the higher priority pops first: with one
  // worker, `high` must already be resolved whenever `low` is.
  const auto& low_result = low.value().Wait();
  EXPECT_TRUE(high.value().done());
  const auto& high_result = high.value().Wait();
  ASSERT_TRUE(low_result.ok());
  ASSERT_TRUE(high_result.ok());
  ExpectSameOutcome(low_result.value(), *ref_b_);
  ExpectSameOutcome(high_result.value(), *ref_b_);
  ASSERT_TRUE(blocker.value().Wait().ok());
}

TEST_F(EngineGroupTest, RoundRobinKeepsQuietTenantAheadOfFlood) {
  engine::QueryEngine::Options opts;
  opts.num_workers = 1;
  opts.planner = FastPlannerOptions();
  opts.cache.persist_dir = *persist_dir_;
  engine::QueryEngine one(opts);
  ASSERT_TRUE(one.RegisterDataset("a", MakeDatasetA()).ok());
  ASSERT_TRUE(one.RegisterDataset("b", MakeDatasetB()).ok());

  // Pin the worker on a cold key while the flood and the quiet tenant
  // queue up behind it.
  auto blocker = one.Submit("b", CrossRightQuery(0.76));
  ASSERT_TRUE(blocker.ok());

  std::vector<engine::QueryTicket> flood;
  std::vector<engine::QueryTicket> quiet;
  const bool ordered = SubmittedBehindBlocker(blocker.value(), [&] {
    for (int i = 0; i < 6; ++i) {
      auto t = one.Submit("b", CrossRightQuery());
      ASSERT_TRUE(t.ok());
      flood.push_back(t.value());
    }
    for (int i = 0; i < 2; ++i) {
      auto t = one.Submit("a", CrossRightQuery());
      ASSERT_TRUE(t.ok());
      quiet.push_back(t.value());
    }
  });
  if (!ordered) {
    for (auto& t : flood) ASSERT_TRUE(t.Wait().ok());
    for (auto& t : quiet) ASSERT_TRUE(t.Wait().ok());
    GTEST_SKIP() << "blocker finished before submissions; queue order "
                    "unobservable on this run";
  }

  // Round-robin interleaves the quiet tenant with the flood: with two
  // tenants at weight 1, both quiet tickets pop within the first two
  // rotation turns — before the third flood query. The single worker
  // completes tickets in pop order, so once flood[2] has resolved, both
  // quiet tickets must already be resolved (a completion-order fact, safe
  // to observe after the fact — unlike counting how much of the flood is
  // done, which races the worker). A FIFO queue would drain all six flood
  // tickets before the first quiet one.
  ASSERT_TRUE(flood[2].Wait().ok());
  EXPECT_TRUE(quiet[0].done());
  EXPECT_TRUE(quiet[1].done());
  for (auto& t : flood) ASSERT_TRUE(t.Wait().ok());
  for (auto& t : quiet) ASSERT_TRUE(t.Wait().ok());
  ASSERT_TRUE(blocker.value().Wait().ok());
}

// ---- Cancellation inside execution -----------------------------------------

TEST_F(EngineGroupTest, PreCancelledTokenAbortsBeforeFirstRound) {
  auto plan = ref_engine_->CachedPlan("a", CrossRightQuery());
  ASSERT_NE(plan, nullptr);
  const auto* ds = ref_engine_->dataset("a");
  std::vector<const video::Video*> test;
  for (int i : ds->test_indices()) {
    test.push_back(&ds->video(static_cast<size_t>(i)));
  }

  auto flag = std::make_shared<std::atomic<bool>>(true);
  core::BatchedExecutor executor(plan.get());
  executor.SetCancellation(core::CancellationToken(flag));
  core::RunResult run = executor.Localize(test);
  EXPECT_TRUE(run.cancelled);
  EXPECT_EQ(run.invocations, 0);
  EXPECT_EQ(run.masks.size(), test.size());
}

// Loads a fresh copy of the fixture's persisted plan for dataset "a". Its
// FeatureCache starts empty (unlike ref_engine_'s in-memory plan, warmed by
// the reference run), so localizing with it does real APFG work and takes
// long enough for a mid-run cancel to land.
std::shared_ptr<core::QueryPlan> LoadColdPlanA(const std::string& persist_dir) {
  engine::QueryEngine::Options opts;
  opts.planner = FastPlannerOptions();
  opts.cache.persist_dir = persist_dir;
  engine::QueryEngine loader(opts);
  auto ds = MakeDatasetA();
  const core::ActionQuery q = CrossRightQuery();
  auto lookup = loader.plan_cache().GetOrPlan(
      engine::QueryEngine::PlanKey("a", q), &ds, q.action_classes,
      q.accuracy_target);
  if (!lookup.ok()) return nullptr;
  return lookup.value().plan;  // outlives the loader (shared ownership)
}

TEST_F(EngineGroupTest, CancelLandsWithinOneLockstepRound) {
  auto cold = LoadColdPlanA(*persist_dir_);
  auto plan = LoadColdPlanA(*persist_dir_);
  ASSERT_NE(cold, nullptr);
  ASSERT_NE(plan, nullptr);
  // Localize over every video of the dataset (not just the test split) so
  // the cold-cache run is long enough for a mid-run cancel to land.
  const auto* ds = ref_engine_->dataset("a");
  std::vector<const video::Video*> videos;
  for (size_t i = 0; i < ds->num_videos(); ++i) {
    videos.push_back(&ds->video(i));
  }

  core::BatchedExecutor full(cold.get());
  const core::RunResult full_run = full.Localize(videos);
  if (full_run.wall_seconds < 0.012) {
    GTEST_SKIP() << "localization too fast (" << full_run.wall_seconds
                 << "s) to observe a mid-run cancel reliably";
  }

  auto flag = std::make_shared<std::atomic<bool>>(false);
  core::BatchedExecutor executor(plan.get());
  executor.SetCancellation(core::CancellationToken(flag));
  std::thread canceller([&flag] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    flag->store(true);
  });
  core::RunResult run = executor.Localize(videos);
  canceller.join();
  // The token is polled at every round boundary, so the abort lands within
  // one lockstep round of the flag flipping: the cancelled run must have
  // done strictly less work (and taken less wall time) than the full one.
  EXPECT_TRUE(run.cancelled);
  EXPECT_LT(run.invocations, full_run.invocations);
  EXPECT_LT(run.wall_seconds, full_run.wall_seconds);
}

TEST_F(EngineGroupTest, EngineCancelDuringExecutionResolvesCancelled) {
  engine::QueryEngine::Options opts;
  opts.num_workers = 1;
  opts.planner = FastPlannerOptions();
  opts.cache.persist_dir = *persist_dir_;
  engine::QueryEngine one(opts);
  ASSERT_TRUE(one.RegisterDataset("a", MakeDatasetA()).ok());

  auto t = one.Submit("a", CrossRightQuery());
  ASSERT_TRUE(t.ok());
  // Wait for the executing phase, then cancel mid-localization.
  while (!t.value().done() &&
         t.value().state() != engine::QueryState::kExecuting) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  t.value().Cancel();
  const auto& r = t.value().Wait();
  // The ticket must resolve promptly either way; if the cancel landed
  // before the run finished, the status is kCancelled.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), common::StatusCode::kCancelled);
    EXPECT_EQ(t.value().state(), engine::QueryState::kCancelled);
  } else {
    ExpectSameOutcome(r.value(), *ref_a_);
  }
}

// ---- Warm start ------------------------------------------------------------

TEST_F(EngineGroupTest, WarmStartServesFirstQueryFromCache) {
  engine::QueryEngine::Options opts;
  opts.num_workers = 2;
  opts.planner = FastPlannerOptions();
  opts.cache.persist_dir = *persist_dir_;
  opts.cache.warm_start = true;
  engine::QueryEngine warm(opts);

  // The catalog scan preloaded the fixture's plans before any dataset was
  // registered or query submitted: the restart cost is paid up front.
  EXPECT_EQ(warm.plan_cache().planner_runs(), 0);
  EXPECT_GE(warm.plan_cache().disk_loads(), 2);
  EXPECT_NE(warm.CachedPlan("a", CrossRightQuery()), nullptr);
  EXPECT_NE(warm.CachedPlan("b", CrossRightQuery()), nullptr);

  ASSERT_TRUE(warm.RegisterDataset("a", MakeDatasetA()).ok());
  auto r = warm.Execute("a", CrossRightQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // First query is a pure memory hit — and warming never trains.
  EXPECT_EQ(r.value().plan_seconds, 0.0);
  EXPECT_EQ(warm.plan_cache().planner_runs(), 0);
  ExpectSameOutcome(r.value(), *ref_a_);
}

TEST_F(EngineGroupTest, GroupWarmStartLoadsPlansOnlyOnHomeShards) {
  auto gopts = GroupOptions(4);
  gopts.engine.cache.warm_start = true;
  engine::EngineGroup group(gopts);

  // Each shard warmed through the ring ownership filter: a dataset's plans
  // load on its home shard and nowhere else.
  EXPECT_EQ(group.planner_runs(), 0);
  EXPECT_GE(group.disk_loads(), 2);
  const int home_a = group.ShardFor("a");
  const int home_b = group.ShardFor("b");
  for (int s = 0; s < group.num_shards(); ++s) {
    EXPECT_EQ(group.shard(s).CachedPlan("a", CrossRightQuery()) != nullptr,
              s == home_a);
    EXPECT_EQ(group.shard(s).CachedPlan("b", CrossRightQuery()) != nullptr,
              s == home_b);
  }

  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  auto r = group.Execute("a", CrossRightQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().plan_seconds, 0.0);
  EXPECT_EQ(group.planner_runs(), 0);
  ExpectSameOutcome(r.value(), *ref_a_);
}

TEST_F(EngineGroupTest, BandPlansWarmUpAcrossLiveResize) {
  // Seed the cheap band: a throwaway engine on the shared catalog trains
  // (or warm-loads, on reruns) the 0.75-band plan for "a" next to the
  // fixture's 0.80 strict plan, and its answer is the cheap reference.
  engine::QueryOptions cheap;
  cheap.tier = core::QueryTier::kBestEffort;
  engine::QueryResult cheap_ref;
  {
    engine::QueryEngine::Options opts;
    opts.num_workers = 2;
    opts.planner = FastPlannerOptions();
    opts.cache.persist_dir = *persist_dir_;
    opts.cache.warm_start = true;
    engine::QueryEngine seed(opts);
    ASSERT_TRUE(seed.RegisterDataset("a", MakeDatasetA()).ok());
    seed.SetDegradeLevel(1);
    auto r = seed.Execute("a", CrossRightQuery(), cheap);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_DOUBLE_EQ(r.value().accuracy_band, 0.75);
    cheap_ref = r.value();
  }

  // A warm-started group loads BOTH bands of "a" onto its home shard.
  auto gopts = GroupOptions(2);
  gopts.engine.cache.warm_start = true;
  engine::EngineGroup group(gopts);
  group.SetDegradeLevel(1);
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  const int home = group.ShardFor("a");
  EXPECT_NE(group.shard(home).CachedPlan("a", CrossRightQuery(0.80)), nullptr);
  EXPECT_NE(group.shard(home).CachedPlan("a", CrossRightQuery(0.75)), nullptr);
  EXPECT_EQ(group.planner_runs(), 0);

  // Grow to the first ring that re-homes "a" (deterministic search, same
  // idiom as ResizeGrowthMovesOnlyRingDiffWithPlanHandoff).
  const engine::ShardRing before(2);
  int grown = -1;
  for (int n = 3; n <= 10; ++n) {
    if (engine::ShardRing(n).ShardFor("a") != before.ShardFor("a")) {
      grown = n;
      break;
    }
  }
  ASSERT_NE(grown, -1) << "no ring size in range re-homes 'a'";
  auto resized = group.Resize(grown);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  const int new_home = group.ShardFor("a");
  ASSERT_NE(new_home, home);

  // The handoff moved the whole band family, not just the strict plan:
  // both tiers serve from cache on the new home, nothing retrains, and
  // each band's answer is bit-identical to its reference.
  EXPECT_NE(group.shard(new_home).CachedPlan("a", CrossRightQuery(0.80)),
            nullptr);
  EXPECT_NE(group.shard(new_home).CachedPlan("a", CrossRightQuery(0.75)),
            nullptr);
  auto strict_r = group.Execute("a", CrossRightQuery());
  auto cheap_r = group.Execute("a", CrossRightQuery(), cheap);
  ASSERT_TRUE(strict_r.ok()) << strict_r.status().ToString();
  ASSERT_TRUE(cheap_r.ok()) << cheap_r.status().ToString();
  EXPECT_EQ(strict_r.value().plan_seconds, 0.0);
  EXPECT_EQ(cheap_r.value().plan_seconds, 0.0);
  EXPECT_EQ(group.planner_runs(), 0);
  EXPECT_DOUBLE_EQ(strict_r.value().accuracy_band, 0.80);
  EXPECT_DOUBLE_EQ(cheap_r.value().accuracy_band, 0.75);
  ExpectSameOutcome(strict_r.value(), *ref_a_);
  ExpectSameOutcome(cheap_r.value(), cheap_ref);
}

// ---- Resize ----------------------------------------------------------------

TEST_F(EngineGroupTest, ResizeGrowthMovesOnlyRingDiffWithPlanHandoff) {
  // Pick the first grown ring that actually re-homes "a" or "b"; the ring
  // hash is deterministic, so this search is stable across runs and
  // platforms (currently: "a" moves at 2 -> 3 shards).
  const int start = 2;
  engine::ShardRing before(start);
  int grown = -1;
  for (int n = start + 1; n <= start + 8; ++n) {
    engine::ShardRing candidate(n);
    if (candidate.ShardFor("a") != before.ShardFor("a") ||
        candidate.ShardFor("b") != before.ShardFor("b")) {
      grown = n;
      break;
    }
  }
  ASSERT_NE(grown, -1) << "no ring size in range re-homes a dataset";
  engine::ShardRing after(grown);
  std::vector<std::string> expect_moved;
  for (const std::string d : {"a", "b"}) {
    if (after.ShardFor(d) != before.ShardFor(d)) expect_moved.push_back(d);
  }

  engine::EngineGroup group(GroupOptions(start));
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  ASSERT_TRUE(group.RegisterDataset("b", MakeDatasetB()).ok());

  // Prime both home shards from the fixture's persisted plans.
  auto ra0 = group.Execute("a", CrossRightQuery());
  auto rb0 = group.Execute("b", CrossRightQuery());
  ASSERT_TRUE(ra0.ok()) << ra0.status().ToString();
  ASSERT_TRUE(rb0.ok()) << rb0.status().ToString();
  ASSERT_EQ(group.planner_runs(), 0);
  const long disk_before = group.disk_loads();

  // A same-size resize is a no-op.
  auto noop = group.Resize(start);
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop.value().moved.empty());

  // In-flight tickets submitted before the resize finish on the old home.
  std::vector<engine::QueryTicket> inflight;
  for (int i = 0; i < 2; ++i) {
    auto ta = group.Submit("a", CrossRightQuery());
    auto tb = group.Submit("b", CrossRightQuery());
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    inflight.push_back(ta.value());
    inflight.push_back(tb.value());
  }

  auto resized = group.Resize(grown);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  EXPECT_EQ(resized.value().old_num_shards, start);
  EXPECT_EQ(resized.value().new_num_shards, grown);
  // Only the ring owner diff moved — nothing else was disturbed.
  EXPECT_EQ(resized.value().moved, expect_moved);
  EXPECT_GE(resized.value().plans_moved,
            static_cast<long>(expect_moved.size()));
  EXPECT_EQ(group.num_shards(), grown);

  for (size_t i = 0; i < inflight.size(); ++i) {
    const auto& r = inflight[i].Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameOutcome(r.value(), i % 2 == 0 ? *ref_a_ : *ref_b_);
  }

  // The tentpole invariant: a resize never replans. Plans reached their
  // new homes through the shared persist_dir manifests — every plan the
  // report counts is a disk load, zero are planner runs.
  EXPECT_EQ(group.planner_runs(), 0);
  EXPECT_EQ(group.disk_loads(), disk_before + resized.value().plans_moved);

  // Moved datasets: re-homed, plans already warm on the new shard, old
  // shard fully retired from serving them.
  for (const std::string& d : expect_moved) {
    const int home = group.ShardFor(d);
    EXPECT_EQ(home, after.ShardFor(d));
    EXPECT_TRUE(group.shard(home).HasDataset(d));
    EXPECT_NE(group.shard(home).CachedPlan(d, CrossRightQuery()), nullptr);
    const int old_home = before.ShardFor(d);
    EXPECT_FALSE(group.shard(old_home).HasDataset(d));
    EXPECT_EQ(group.shard(old_home).CachedPlan(d, CrossRightQuery()),
              nullptr);
  }

  // Results after the resize are bit-identical to the never-resized
  // single-engine reference, with the plans still served from cache.
  auto ra1 = group.Execute("a", CrossRightQuery());
  auto rb1 = group.Execute("b", CrossRightQuery());
  ASSERT_TRUE(ra1.ok()) << ra1.status().ToString();
  ASSERT_TRUE(rb1.ok()) << rb1.status().ToString();
  ExpectSameOutcome(ra1.value(), *ref_a_);
  ExpectSameOutcome(rb1.value(), *ref_b_);
  EXPECT_EQ(ra1.value().plan_seconds, 0.0);
  EXPECT_EQ(rb1.value().plan_seconds, 0.0);
  EXPECT_EQ(group.planner_runs(), 0);
}

TEST_F(EngineGroupTest, ResizeShrinkHandsOffInMemoryPlansWithoutPersistence) {
  // No persist_dir: the trained plan can only reach the surviving shard
  // through the direct in-memory handoff. Dataset "d" hashes onto shard 1
  // of a 2-ring (deterministic), i.e. onto the shard being removed.
  engine::EngineGroup::Options gopts;
  gopts.num_shards = 2;
  gopts.engine.num_workers = 2;
  gopts.engine.planner = FastPlannerOptions();
  engine::EngineGroup group(gopts);
  ASSERT_EQ(group.ShardFor("d"), 1) << "ring layout changed; pick a dataset "
                                       "name that lives on the removed shard";
  ASSERT_TRUE(group.RegisterDataset("d", MakeDatasetB()).ok());

  auto r0 = group.Execute("d", CrossRightQuery());
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_EQ(group.planner_runs(), 1);  // cold: trained on shard 1

  auto resized = group.Resize(1);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  EXPECT_EQ(resized.value().moved, std::vector<std::string>{"d"});
  EXPECT_EQ(resized.value().plans_moved, 1);
  EXPECT_EQ(group.num_shards(), 1);
  EXPECT_EQ(group.ShardFor("d"), 0);
  EXPECT_TRUE(group.shard(0).HasDataset("d"));
  EXPECT_NE(group.shard(0).CachedPlan("d", CrossRightQuery()), nullptr);

  auto r1 = group.Execute("d", CrossRightQuery());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ExpectSameOutcome(r1.value(), r0.value());
  EXPECT_EQ(r1.value().plan_seconds, 0.0);
  // The surviving shard never planned and never touched a disk that does
  // not exist: the plan arrived purely by handoff.
  EXPECT_EQ(group.planner_runs(), 0);
  EXPECT_EQ(group.disk_loads(), 0);
}

TEST_F(EngineGroupTest, ResizeHandsOffPlanTrainedDuringDrain) {
  // A cold query in flight on a moving dataset trains its plan WHILE the
  // resize drains the old shard. That plan must still reach the new home
  // (the post-drain handoff) — with no persist_dir, dropping it would
  // silently force a replan, breaking the planner_runs-flat contract.
  engine::EngineGroup::Options gopts;
  gopts.num_shards = 2;
  gopts.engine.num_workers = 1;
  gopts.engine.planner = FastPlannerOptions();
  engine::EngineGroup group(gopts);
  ASSERT_EQ(group.ShardFor("d"), 1);
  ASSERT_TRUE(group.RegisterDataset("d", MakeDatasetB()).ok());

  // Cold submission: queued or already planning on shard 1 when the
  // resize starts; either way it finishes on the old shard during the
  // drain.
  auto t = group.Submit("d", CrossRightQuery());
  ASSERT_TRUE(t.ok());

  auto resized = group.Resize(1);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  EXPECT_EQ(resized.value().moved, std::vector<std::string>{"d"});
  EXPECT_EQ(resized.value().plans_moved, 1);
  const auto& r0 = t.value().Wait();
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();

  EXPECT_NE(group.shard(0).CachedPlan("d", CrossRightQuery()), nullptr);
  auto r1 = group.Execute("d", CrossRightQuery());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ExpectSameOutcome(r1.value(), r0.value());
  EXPECT_EQ(r1.value().plan_seconds, 0.0);
  // The surviving shard never planned: the drain-trained plan was handed
  // over, not retrained.
  EXPECT_EQ(group.planner_runs(), 0);
}

TEST_F(EngineGroupTest, ResizeRejectsInvalidShardCounts) {
  engine::EngineGroup group(GroupOptions(2));
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());

  for (int bad : {0, -1, -7}) {
    auto r = group.Resize(bad);
    ASSERT_FALSE(r.ok()) << "Resize(" << bad << ") succeeded";
    EXPECT_EQ(r.status().code(), common::StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(group.num_shards(), 2);

  // Equal to the current count: a clean no-op — nothing moves, nothing
  // drains, the resize counter does not tick.
  auto same = group.Resize(2);
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_EQ(same.value().old_num_shards, 2);
  EXPECT_EQ(same.value().new_num_shards, 2);
  EXPECT_TRUE(same.value().moved.empty());
  EXPECT_EQ(same.value().plans_moved, 0);
  EXPECT_EQ(group.Stats().resizes, 0);

  // Same contract through the facade.
  core::ZeusDb db(GroupOptions(2));
  auto bad = db.ResizeShards(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), common::StatusCode::kInvalidArgument);
  auto noop = db.ResizeShards(2);
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop.value().moved.empty());
  EXPECT_EQ(db.num_shards(), 2);
}

TEST_F(EngineGroupTest, DatasetWeightSurvivesGrowAndShrink) {
  // Regression: weights set via SetDatasetWeight used to live only in the
  // home shard's queue and were silently dropped when a resize re-homed
  // the dataset. The group now keeps the weight map and re-applies it.
  engine::EngineGroup group(GroupOptions(2));
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  ASSERT_TRUE(group.RegisterDataset("b", MakeDatasetB()).ok());
  ASSERT_TRUE(group.SetDatasetWeight("a", 3).ok());
  ASSERT_TRUE(group.SetDatasetWeight("b", 2).ok());
  EXPECT_EQ(group.engine_for("a").DatasetWeight("a"), 3);
  // A failed update must not disturb the durable record: the earlier
  // weight still survives every later resize.
  EXPECT_EQ(group.SetDatasetWeight("a", 0).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(group.SetDatasetWeight("nope", 5).code(),
            common::StatusCode::kNotFound);

  // Grow to the first ring size that re-homes at least one dataset (the
  // deterministic search mirrors ResizeGrowthMovesOnlyRingDiff).
  engine::ShardRing before(2);
  int grown = -1;
  for (int n = 3; n <= 10; ++n) {
    engine::ShardRing candidate(n);
    if (candidate.ShardFor("a") != before.ShardFor("a") ||
        candidate.ShardFor("b") != before.ShardFor("b")) {
      grown = n;
      break;
    }
  }
  ASSERT_NE(grown, -1);
  auto resized = group.Resize(grown);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  ASSERT_FALSE(resized.value().moved.empty());
  EXPECT_EQ(group.engine_for("a").DatasetWeight("a"), 3);
  EXPECT_EQ(group.engine_for("b").DatasetWeight("b"), 2);

  // Shrink to one shard: everything re-homes onto shard 0; both weights
  // must follow.
  auto shrunk = group.Resize(1);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(group.shard(0).DatasetWeight("a"), 3);
  EXPECT_EQ(group.shard(0).DatasetWeight("b"), 2);

  // The weight is visible in the snapshot too (per-dataset gauge).
  const engine::GroupStats stats = group.Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  bool saw_a = false;
  for (const auto& ds : stats.shards[0].datasets) {
    if (ds.dataset == "a") {
      saw_a = true;
      EXPECT_EQ(ds.weight, 3);
    }
  }
  EXPECT_TRUE(saw_a);
}

TEST_F(EngineGroupTest, RegistrationsProceedDuringResizeDrain) {
  // Regression: the resize serialization used to be held across the drain
  // waits, so a dataset registration storm during a long drain queued up
  // behind the in-flight tail. Drains now happen off the registration
  // path: RegisterDataset only serializes with the (fast) ring flip.
  engine::EngineGroup::Options gopts;
  gopts.num_shards = 2;
  gopts.engine.num_workers = 1;
  gopts.engine.planner = FastPlannerOptions();
  engine::EngineGroup group(gopts);
  ASSERT_EQ(group.ShardFor("d"), 1);  // "d" lives on the shard being removed
  ASSERT_TRUE(group.RegisterDataset("d", MakeDatasetB()).ok());

  // Pre-generate so registration latency below measures admission, not
  // dataset synthesis.
  std::vector<video::SyntheticDataset> extra;
  for (int i = 0; i < 4; ++i) extra.push_back(MakeDatasetB());

  // A cold query on the moving dataset pins the drain: the planner run
  // takes seconds, and the resize must wait it out.
  auto blocker = group.Submit("d", CrossRightQuery());
  ASSERT_TRUE(blocker.ok());
  while (blocker.value().state() == engine::QueryState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<bool> resize_done{false};
  std::atomic<bool> resize_ok{false};
  std::thread resizer([&] {
    auto r = group.Resize(1);
    resize_ok.store(r.ok());
    // Set unconditionally, success or not: the main thread's wait loop
    // keys on this — a failed resize must fail the test, not hang it.
    resize_done.store(true);
  });

  // Wait for the resize to pass its flip (the shard count changes), then
  // register datasets while its drain still waits on the blocker.
  while (group.num_shards() != 1 && !resize_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(group
                    .RegisterDataset("extra-" + std::to_string(i),
                                     std::move(extra[static_cast<size_t>(i)]))
                    .ok());
  }
  const bool registered_during_drain = !resize_done.load();
  resizer.join();
  ASSERT_TRUE(resize_ok.load());

  if (!registered_during_drain) {
    // The blocker finished before the registrations landed (overloaded
    // machine): ordering was unobservable, but nothing may be lost.
    ASSERT_TRUE(blocker.value().Wait().ok());
    GTEST_SKIP() << "drain finished before registrations; contention "
                    "unobservable on this run";
  }

  ASSERT_TRUE(blocker.value().Wait().ok());
  EXPECT_EQ(group.num_shards(), 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(group.HasDataset("extra-" + std::to_string(i)));
  }
  // The moved dataset still answers, from the handed-over plan.
  auto r = group.Execute("d", CrossRightQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectSameOutcome(r.value(), blocker.value().Wait().value());
  // The surviving shard serves the blocker's drain-trained plan from the
  // handoff — it never planned itself (the trainer's counter retired with
  // shard 1).
  EXPECT_EQ(group.planner_runs(), 0);
  EXPECT_EQ(r.value().plan_seconds, 0.0);
}

// ---- Stats / metrics on a live engine --------------------------------------

TEST_F(EngineGroupTest, StatsObserveServedQueries) {
  auto gopts = GroupOptions(2);
  gopts.engine.cache.warm_start = true;
  engine::EngineGroup group(gopts);
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  ASSERT_TRUE(group.RegisterDataset("b", MakeDatasetB()).ok());

  std::vector<engine::QueryTicket> tickets;
  for (int i = 0; i < 3; ++i) {
    auto ta = group.Submit("a", CrossRightQuery());
    auto tb = group.Submit("b", CrossRightQuery());
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    tickets.push_back(ta.value());
    tickets.push_back(tb.value());
  }
  for (auto& t : tickets) ASSERT_TRUE(t.Wait().ok());

  // A worker records a run's metrics just after resolving the ticket, so
  // a Wait() returning can precede the last RecordRun by microseconds —
  // poll the snapshot to quiesce instead of racing it.
  engine::GroupStats stats = group.Stats();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stats.completed < 6 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = group.Stats();
  }
  EXPECT_EQ(stats.num_shards, 2);
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_EQ(stats.queue_depth, 0);  // drained
  EXPECT_EQ(stats.active, 0);
  EXPECT_GE(stats.peak_queue_depth, 1);
  EXPECT_EQ(stats.exec.count, 6);
  EXPECT_EQ(stats.queue_wait.count, 6);
  EXPECT_GT(stats.exec.p95(), 0.0);
  EXPECT_EQ(stats.planner_runs, 0);  // warm-started from the fixture
  EXPECT_GE(stats.disk_loads, 2);
  EXPECT_EQ(stats.resizes, 0);

  // Per-dataset rows carry the same story, on the right shards.
  long a_completed = 0, b_completed = 0;
  for (const auto& shard : stats.shards) {
    for (const auto& ds : shard.datasets) {
      if (ds.dataset == "a") a_completed += ds.completed;
      if (ds.dataset == "b") b_completed += ds.completed;
    }
  }
  EXPECT_EQ(a_completed, 3);
  EXPECT_EQ(b_completed, 3);

  // The JSON form serializes without blowing up and carries the counters.
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"completed\": 6"), std::string::npos) << json;
}

// ---- Autoscaler on a live group --------------------------------------------

TEST_F(EngineGroupTest, AutoscalerGrowsUnderFloodAndShrinksWhenIdle) {
  auto gopts = GroupOptions(1);
  gopts.engine.num_workers = 1;
  gopts.engine.max_pending = 64;
  gopts.engine.cache.warm_start = true;  // plans from the fixture's disk
  gopts.autoscale.enabled = true;
  gopts.autoscale.min_shards = 1;
  gopts.autoscale.max_shards = 3;
  gopts.autoscale.up_queue_per_shard = 3.0;
  gopts.autoscale.down_queue_total = 0.0;
  gopts.autoscale.sustain_samples = 2;
  gopts.autoscale.cooldown_samples = 3;
  gopts.autoscale.sample_interval = std::chrono::milliseconds(5);
  engine::EngineGroup group(gopts);
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  ASSERT_TRUE(group.RegisterDataset("b", MakeDatasetB()).ok());

  // Sustained flood: a producer keeps the (bounded) queue pressurized —
  // back-pressure rejections are expected and ignored — until the policy
  // has visibly scaled up. Unlike a fixed burst, this cannot outrun the
  // sampler on a fast or heavily-loaded machine: the backlog stays deep
  // for as many samples as the decision needs. All plans are warm from
  // disk, so no query ever trains.
  std::atomic<bool> stop_flood{false};
  std::mutex tickets_mu;
  std::vector<engine::QueryTicket> tickets;
  std::vector<bool> is_a;
  std::thread producer([&] {
    size_t i = 0;
    while (!stop_flood.load()) {
      const bool a = (i % 2 == 0);
      auto t = group.Submit(a ? "a" : "b", CrossRightQuery());
      if (t.ok()) {
        std::lock_guard<std::mutex> lock(tickets_mu);
        tickets.push_back(t.value());
        is_a.push_back(a);
        ++i;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // The flood must trigger at least one scale-up. The counter ticks when
  // the (drain-inclusive) resize completes, so poll with a generous
  // deadline.
  engine::GroupStats stats = group.Stats();
  const auto resize_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (stats.resizes < 1 &&
         std::chrono::steady_clock::now() < resize_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = group.Stats();
  }
  stop_flood.store(true);
  producer.join();
  EXPECT_GE(stats.resizes, 1) << stats.ToJson();
  EXPECT_GE(stats.autoscaler_decisions, 1);

  // Every answer is bit-identical to the fixed-shard reference, no matter
  // how many resizes happened mid-flood — and scaling never replanned:
  // plans reached new shards via handoff/warm loads.
  ASSERT_GE(tickets.size(), 1u);
  for (size_t i = 0; i < tickets.size(); ++i) {
    const auto& r = tickets[i].Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameOutcome(r.value(), is_a[i] ? *ref_a_ : *ref_b_);
  }
  EXPECT_EQ(group.Stats().planner_runs, 0);

  // Idle: the policy shrinks the group back to min_shards.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (group.num_shards() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(group.num_shards(), 1) << group.Stats().ToJson();

  // Still serving, still bit-identical, still no replanning.
  auto ra = group.Execute("a", CrossRightQuery());
  auto rb = group.Execute("b", CrossRightQuery());
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ExpectSameOutcome(ra.value(), *ref_a_);
  ExpectSameOutcome(rb.value(), *ref_b_);
  EXPECT_EQ(group.planner_runs(), 0);

  // Shrinking retired shards, but their history was carried: every flood
  // completion is still in the aggregate — counters never run backwards
  // across a scale-down. (The two queries just above may still be
  // mid-record, so they are not counted on.)
  EXPECT_GE(group.Stats().completed, static_cast<long>(tickets.size()));
}

TEST_F(EngineGroupTest, FloodShedsAccuracyBeforeRejectingStrictTenants) {
  // Seed the 0.75-band plan for "b" into the shared catalog so shedding
  // never trains mid-flood (warm-loads on reruns), and capture the cheap
  // band's reference answer.
  engine::QueryOptions cheap;
  cheap.tier = core::QueryTier::kBestEffort;
  engine::QueryResult cheap_ref;
  {
    engine::QueryEngine::Options opts;
    opts.num_workers = 2;
    opts.planner = FastPlannerOptions();
    opts.cache.persist_dir = *persist_dir_;
    opts.cache.warm_start = true;
    engine::QueryEngine seed(opts);
    ASSERT_TRUE(seed.RegisterDataset("b", MakeDatasetB()).ok());
    seed.SetDegradeLevel(1);
    auto r = seed.Execute("b", CrossRightQuery(), cheap);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_DOUBLE_EQ(r.value().accuracy_band, 0.75);
    cheap_ref = r.value();
  }

  // Undersized on purpose: one shard that cannot grow, so the shed rung
  // is the only relief the ladder has before admission back-pressure.
  auto gopts = GroupOptions(1);
  gopts.engine.num_workers = 1;
  gopts.engine.max_pending = 16;
  gopts.engine.cache.warm_start = true;
  gopts.autoscale.enabled = true;
  gopts.autoscale.min_shards = 1;
  gopts.autoscale.max_shards = 1;
  gopts.autoscale.max_degrade_level = 1;
  gopts.autoscale.up_queue_per_shard = 3.0;
  gopts.autoscale.down_queue_total = 0.0;
  gopts.autoscale.sustain_samples = 2;
  gopts.autoscale.cooldown_samples = 3;
  gopts.autoscale.sample_interval = std::chrono::milliseconds(5);
  engine::EngineGroup group(gopts);
  ASSERT_TRUE(group.RegisterDataset("b", MakeDatasetB()).ok());

  // Best-effort flood keeps the bounded queue pinned at max_pending: it
  // submits flat-out and yields only when back-pressured, so the backlog
  // signal is present at every autoscaler sample regardless of how fast
  // the single worker drains tiny-dataset queries. Its own back-pressure
  // rejections are expected and ignored.
  std::atomic<bool> stop_flood{false};
  std::mutex mu;
  std::vector<engine::QueryTicket> best_effort;
  std::thread producer([&] {
    while (!stop_flood.load()) {
      auto t = group.Submit("b", CrossRightQuery(), cheap);
      if (t.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        best_effort.push_back(t.value());
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Meanwhile a strict tenant keeps submitting into the same full queue.
  // Displacement must make every one of these land: zero
  // kResourceExhausted for the strict tier, whatever the flood does.
  std::vector<engine::QueryTicket> strict;
  int strict_rejected = 0;
  int degrade_observed = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (degrade_observed < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    if (strict.size() < 24) {
      auto t = group.Submit("b", CrossRightQuery());
      if (t.ok()) {
        strict.push_back(t.value());
      } else if (t.status().code() == common::StatusCode::kResourceExhausted) {
        ++strict_rejected;
      }
    }
    degrade_observed = std::max(degrade_observed, group.degrade_level());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop_flood.store(true);
  producer.join();

  // The ladder's first rung fired (shed, not scale — the group cannot
  // grow) and no strict submission was ever bounced.
  EXPECT_GE(degrade_observed, 1) << group.Stats().ToJson();
  EXPECT_EQ(strict_rejected, 0);
  EXPECT_EQ(group.num_shards(), 1);

  // Strict answers: bit-identical to the unloaded reference, full band,
  // never marked degraded — load shedding is invisible to this tier.
  ASSERT_GE(strict.size(), 1u);
  for (auto& t : strict) {
    const auto& r = t.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().tier, core::QueryTier::kStrict);
    EXPECT_DOUBLE_EQ(r.value().accuracy_band, 0.80);
    ExpectSameOutcome(r.value(), *ref_b_);
  }

  // Best-effort answers: some were displaced or served pre-shed at the
  // full band; every shed answer is annotated with the cheap band and a
  // confidence at or above the band floor, and matches the cheap-band
  // reference bit for bit.
  long shed = 0;
  for (auto& t : best_effort) {
    const auto& r = t.Wait();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), common::StatusCode::kResourceExhausted);
      continue;
    }
    EXPECT_EQ(r.value().tier, core::QueryTier::kBestEffort);
    if (r.value().accuracy_band == 0.75) {
      ++shed;
      EXPECT_GE(r.value().achieved_confidence, core::BandFloor(0.75) - 1e-9);
      ExpectSameOutcome(r.value(), cheap_ref);
    } else {
      EXPECT_DOUBLE_EQ(r.value().accuracy_band, 0.80);
      ExpectSameOutcome(r.value(), *ref_b_);
    }
  }
  EXPECT_GE(shed, 1);
  // Shedding moved queries onto the warm cheap-band plan — it never
  // trained anything — and every shed answer was counted as degraded.
  EXPECT_EQ(group.planner_runs(), 0);
  EXPECT_EQ(group.Stats().band_degraded, shed);
}

TEST_F(EngineGroupTest, AutoscalerDisabledChangesNothing) {
  // With the flag off (the default), no policy thread exists and the
  // shard count never moves on its own.
  engine::EngineGroup group(GroupOptions(2));
  ASSERT_TRUE(group.RegisterDataset("a", MakeDatasetA()).ok());
  for (int i = 0; i < 4; ++i) {
    auto r = group.Execute("a", CrossRightQuery());
    ASSERT_TRUE(r.ok());
    ExpectSameOutcome(r.value(), *ref_a_);
  }
  const engine::GroupStats stats = group.Stats();
  EXPECT_EQ(stats.resizes, 0);
  EXPECT_EQ(stats.autoscaler_decisions, 0);
  EXPECT_EQ(group.num_shards(), 2);
}

TEST_F(EngineGroupTest, ZeusDbResizeShardsKeepsAnswersIdentical) {
  core::ZeusDb db(GroupOptions(2));
  ASSERT_TRUE(db.RegisterDataset("a", MakeDatasetA()).ok());
  auto r0 = db.Execute("a", CrossRightQuery());
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  ExpectSameOutcome(r0.value(), *ref_a_);

  auto resized = db.ResizeShards(3);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  EXPECT_EQ(db.num_shards(), 3);

  auto r1 = db.Execute("a", CrossRightQuery());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ExpectSameOutcome(r1.value(), *ref_a_);
  EXPECT_EQ(r1.value().plan_seconds, 0.0);
  EXPECT_EQ(db.group().planner_runs(), 0);
}

}  // namespace
}  // namespace zeus
