// Table 6: training cost breakdown — APFG training, RL training, and
// inference wall time for each method on the CrossRight query.

#include "bench/bench_util.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Table 6: training and inference cost (CrossRight)");

  auto ds = video::SyntheticDataset::Generate(
      bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
  core::QueryPlanner planner(&ds, bench::BenchPlannerOptions());
  auto plan_r = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.85);
  if (!plan_r.ok()) return 1;
  const core::QueryPlan& plan = plan_r.value();
  auto train = planner.SplitVideos(ds.train_indices());
  auto test = planner.SplitVideos(ds.test_indices());
  common::Rng rng(13);

  // Frame-PP has its own (cheaper) 2D training.
  double frame_pp_train = 0.0;
  baselines::FramePp::Options fp_opts;
  fp_opts.resolution_px =
      plan.space.config(plan.space.SlowestId()).spec.resolution_px;
  baselines::FramePp frame_pp(fp_opts, plan.cost_model, plan.targets, &rng);
  (void)frame_pp.Train(train, &frame_pp_train);

  auto frame_row = bench::Evaluate(&frame_pp, test, plan.targets);
  int sliding_id = baselines::PickSlidingConfig(plan.space, 0.85);
  baselines::ZeusSliding sliding(plan.space.config(sliding_id),
                                 plan.apfg.get(), plan.cost_model);
  auto sliding_row = bench::Evaluate(&sliding, test, plan.targets);
  baselines::ZeusHeuristic heuristic({}, &plan.rl_space, plan.cache.get());
  auto heur_row = bench::Evaluate(&heuristic, test, plan.targets);
  core::QueryExecutor executor(&plan);
  auto zeus_row = bench::Evaluate(&executor, test, plan.targets);

  std::printf("%-16s %16s %16s %14s\n", "Method", "APFG train (s)",
              "RL train (s)", "Inference (s)");
  std::printf("%-16s %16.2f %16s %14.3f\n", "Frame-PP", frame_pp_train, "NA",
              frame_row.wall_seconds);
  std::printf("%-16s %16.2f %16s %14.3f\n", "Zeus-Sliding",
              plan.apfg_train_seconds, "NA", sliding_row.wall_seconds);
  std::printf("%-16s %16.2f %16s %14.3f\n", "Zeus-Heuristic",
              plan.apfg_train_seconds, "NA", heur_row.wall_seconds);
  std::printf("%-16s %16.2f %16.2f %14.3f\n", "Zeus-RL",
              plan.apfg_train_seconds, plan.rl_train_seconds,
              zeus_row.wall_seconds);
  std::printf("\nconfiguration profiling (shared by all Zeus methods): "
              "%.2f s\n", plan.profile_seconds);
  std::printf("\npaper (Table 6): RL training adds ~35%% to planning, repaid "
              "by faster inference (Zeus-RL inference 38.5s vs sliding "
              "181s on their testbed).\n");
  return 0;
}
