// Figure 14: configuration distribution — the agent is constrained to three
// configurations (fast / mid / slow) and the percentage of frames processed
// by each level is compared against Zeus-Heuristic, plus the low/high
// resolution split (Fig. 14b).

#include "bench/bench_util.h"
#include "rl/trainer.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Figure 14: fast/mid/slow configuration distribution");

  struct QuerySpec {
    video::DatasetFamily family;
    video::ActionClass cls;
    double target;
  };
  const QuerySpec queries[] = {
      {video::DatasetFamily::kBdd100kLike, video::ActionClass::kCrossRight,
       0.85},
      {video::DatasetFamily::kThumos14Like, video::ActionClass::kPoleVault,
       0.75},
      {video::DatasetFamily::kActivityNetLike,
       video::ActionClass::kIroningClothes, 0.75},
  };

  for (const QuerySpec& q : queries) {
    auto ds =
        video::SyntheticDataset::Generate(bench::BenchProfile(q.family), 17);
    auto opts = bench::BenchPlannerOptions();
    // Constrain the agent to exactly three frontier configurations.
    opts.max_rl_configs = 3;
    core::QueryPlanner planner(&ds, opts);
    auto plan_r = planner.PlanForClasses({q.cls}, q.target);
    if (!plan_r.ok()) continue;
    const core::QueryPlan& plan = plan_r.value();
    auto test = planner.SplitVideos(ds.test_indices());

    baselines::ZeusHeuristic heuristic({}, &plan.rl_space, plan.cache.get());
    auto heur = bench::Evaluate(&heuristic, test, plan.targets);
    core::QueryExecutor executor(&plan);
    auto zeus = bench::Evaluate(&executor, test, plan.targets);

    auto hh = core::SummarizeConfigUsage(plan.rl_space, heur.run);
    auto zh = core::SummarizeConfigUsage(plan.rl_space, zeus.run);
    std::printf("\n--- %s ---\n", video::ActionClassName(q.cls));
    std::printf("%-16s %6s %6s %6s   %8s %8s   %6s\n", "method", "fast%",
                "mid%", "slow%", "lo-res%", "hi-res%", "F1");
    std::printf("%-16s %6.0f %6.0f %6.0f   %8.0f %8.0f   %6.3f\n",
                "Zeus-Heuristic", hh.fast_pct, hh.mid_pct, hh.slow_pct,
                hh.low_res_pct, hh.high_res_pct, heur.metrics.f1);
    std::printf("%-16s %6.0f %6.0f %6.0f   %8.0f %8.0f   %6.3f\n", "Zeus-RL",
                zh.fast_pct, zh.mid_pct, zh.slow_pct, zh.low_res_pct,
                zh.high_res_pct, zeus.metrics.f1);
  }
  std::printf("\npaper (Fig. 14): the heuristic concentrates ~85%% of frames "
              "on a single configuration; Zeus-RL mixes all three and barely "
              "exceeds the target accuracy.\n");
  return 0;
}
