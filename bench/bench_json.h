#ifndef ZEUS_BENCH_BENCH_JSON_H_
#define ZEUS_BENCH_BENCH_JSON_H_

// Machine-readable bench output + tail-latency measurement helpers. Split
// from bench_util.h so binaries that only need the JSON emitter (e.g.
// bench_micro_substrate, which is otherwise a pure google-benchmark binary)
// don't pull in the dataset/planner/baseline headers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace zeus::bench {

// ---- Machine-readable output (--json <path>) -------------------------------
//
// Every bench binary can emit its results as JSON for the CI bench-smoke job
// and the BENCH_*.json perf trajectory. Schema (docs/CI.md):
//
//   {
//     "bench": "<binary name>",
//     "records": [
//       {"name": "<record name>",
//        "context": {"<dimension>": <number>, ...},   // optional
//        "metrics": {"<metric>": <number>, ...}},
//       ...
//     ]
//   }
//
// Metric names carry their own direction convention: *_seconds / *_ns are
// lower-is-better, everything else (fps, gflops, queries_per_sec, f1) is
// higher-is-better — tools/bench_regress.py applies the gate accordingly.
//
// `context` records the workload dimensions a measurement was taken under
// (e.g. num_shards for the sharded serving bench, compute_path/batch_size
// for the substrate tail records). bench_regress.py folds the context into
// the metric's identity, so the regression gate can never compare
// measurements taken under different dimensions — a 4-shard wall-seconds
// number is a different metric from a 1-shard one, not a regression of it.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& record_name, const std::string& metric,
           double value) {
    Record(record_name).metrics[metric] = value;
  }

  // Tags one record with a workload dimension (part of the metric identity
  // downstream, see above).
  void AddContext(const std::string& record_name, const std::string& key,
                  double value) {
    Record(record_name).context[key] = value;
  }

  // Writes the collected records; prints a notice so CI logs show the
  // artifact location. No-op when `path` is empty.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [",
                 bench_name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      const RecordData& r = records_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", ", i == 0 ? "" : ",",
                   r.name.c_str());
      if (!r.context.empty()) {
        std::fprintf(f, "\"context\": {");
        size_t j = 0;
        for (const auto& [key, value] : r.context) {
          std::fprintf(f, "%s\"%s\": %.9g", j++ == 0 ? "" : ", ",
                       key.c_str(), value);
        }
        std::fprintf(f, "}, ");
      }
      std::fprintf(f, "\"metrics\": {");
      size_t j = 0;
      for (const auto& [metric, value] : r.metrics) {
        std::fprintf(f, "%s\"%s\": %.9g", j++ == 0 ? "" : ", ",
                     metric.c_str(), value);
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("bench json written to %s (%zu records)\n", path.c_str(),
                records_.size());
    return true;
  }

 private:
  struct RecordData {
    std::string name;
    std::map<std::string, double> context;
    std::map<std::string, double> metrics;
  };

  RecordData& Record(const std::string& record_name) {
    for (auto& r : records_) {
      if (r.name == record_name) return r;
    }
    records_.push_back({record_name, {}, {}});
    return records_.back();
  }

  std::string bench_name_;
  std::vector<RecordData> records_;
};

// Shared flag parsing: the path following "--json", or "" when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

// Shared flag parsing: true when "--reduced" is present (CI-sized run).
inline bool ReducedFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reduced") == 0) return true;
  }
  return false;
}

// ---- Tail latency ----------------------------------------------------------
//
// Per-invocation latency percentiles from repeated timed runs. A mean hides
// exactly the behavior the serving layer cares about (one slow allocation,
// one scheduler preemption); the substrate benches publish p50/p95/p99 so a
// change that only fattens the tail still moves a gated metric.
struct TailStats {
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  int samples = 0;
};

// Nearest-rank percentile of a sample vector (sorted in place).
inline double PercentileOf(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t n = samples->size();
  size_t rank = static_cast<size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return (*samples)[rank];
}

// Times `iters` invocations of fn (after `warmup` untimed ones) and reduces
// them to tail percentiles. One sample per invocation — callers pick an
// `iters` large enough for the p99 rank to exist (>= 100 for a true p99;
// below that it degrades to the max).
template <typename Fn>
TailStats MeasureTail(int iters, int warmup, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const Clock::time_point t0 = Clock::now();
    fn();
    samples.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  TailStats t;
  t.samples = iters;
  // p50 first (PercentileOf sorts in place; later calls reuse the order).
  t.p50_seconds = PercentileOf(&samples, 0.50);
  t.p95_seconds = PercentileOf(&samples, 0.95);
  t.p99_seconds = PercentileOf(&samples, 0.99);
  return t;
}

// Emits one tail measurement as <prefix>_p{50,95,99}_seconds on `record`.
// p50 and p99 are informational by default downstream; p95 metrics gate
// only where bench/gate_overrides.json opts them in (docs/CI.md).
inline void AddTailMetrics(BenchJson* json, const std::string& record,
                           const std::string& prefix, const TailStats& t) {
  json->Add(record, prefix + "_p50_seconds", t.p50_seconds);
  json->Add(record, prefix + "_p95_seconds", t.p95_seconds);
  json->Add(record, prefix + "_p99_seconds", t.p99_seconds);
}

}  // namespace zeus::bench

#endif  // ZEUS_BENCH_BENCH_JSON_H_
