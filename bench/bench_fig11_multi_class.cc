// Figure 11: multi-class training — one agent trained on the union of two
// classes (frames of either class are positives). Combinations:
// (CrossRight + CrossLeft) — similar-looking — and (CrossRight + LeftTurn)
// — characteristically different (§6.5).

#include "bench/bench_util.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Figure 11: multi-class training");

  struct Combo {
    const char* name;
    std::vector<video::ActionClass> classes;
  };
  const Combo combos[] = {
      {"CrossRight + CrossLeft",
       {video::ActionClass::kCrossRight, video::ActionClass::kCrossLeft}},
      {"CrossRight + LeftTurn",
       {video::ActionClass::kCrossRight, video::ActionClass::kLeftTurn}},
  };

  for (const Combo& combo : combos) {
    auto ds = video::SyntheticDataset::Generate(
        bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
    core::QueryPlanner planner(&ds, bench::BenchPlannerOptions());
    auto plan = planner.PlanForClasses(combo.classes, 0.85);
    if (!plan.ok()) continue;
    auto train = planner.SplitVideos(ds.train_indices());
    auto test = planner.SplitVideos(ds.test_indices());
    common::Rng rng(9);
    auto rows = bench::RunAllMethods(plan.value(), ds, train, test, &rng);
    std::printf("\n--- %s ---\n", combo.name);
    bench::PrintRows(rows);
  }
  std::printf("\npaper (Fig. 11): Zeus-RL keeps the best accuracy-throughput "
              "trade-off for both combinations; the similar-looking pair "
              "(CrossRight+CrossLeft) is the easier task.\n");
  return 0;
}
