#ifndef ZEUS_BENCH_BENCH_UTIL_H_
#define ZEUS_BENCH_BENCH_UTIL_H_

// Shared helpers for the per-table / per-figure reproduction benches.
// Each bench binary regenerates one table or figure of the paper's §6 on the
// synthetic substrate (see DESIGN.md for the experiment index).

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/frame_pp.h"
#include "baselines/heuristic.h"
#include "baselines/segment_pp.h"
#include "baselines/sliding.h"
#include "common/logging.h"
#include "core/executor.h"
#include "core/query_planner.h"
#include "video/dataset.h"

namespace zeus::bench {

// ---- Machine-readable output (--json <path>) -------------------------------
//
// Every bench binary can emit its results as JSON for the CI bench-smoke job
// and the BENCH_*.json perf trajectory. Schema (docs/CI.md):
//
//   {
//     "bench": "<binary name>",
//     "records": [
//       {"name": "<record name>",
//        "context": {"<dimension>": <number>, ...},   // optional
//        "metrics": {"<metric>": <number>, ...}},
//       ...
//     ]
//   }
//
// Metric names carry their own direction convention: *_seconds / *_ns are
// lower-is-better, everything else (fps, gflops, queries_per_sec, f1) is
// higher-is-better — tools/bench_regress.py applies the gate accordingly.
//
// `context` records the workload dimensions a measurement was taken under
// (e.g. num_shards for the sharded serving bench). bench_regress.py folds
// the context into the metric's identity, so the regression gate can never
// compare measurements taken under different dimensions — a 4-shard
// wall-seconds number is a different metric from a 1-shard one, not a
// regression of it.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& record_name, const std::string& metric,
           double value) {
    Record(record_name).metrics[metric] = value;
  }

  // Tags one record with a workload dimension (part of the metric identity
  // downstream, see above).
  void AddContext(const std::string& record_name, const std::string& key,
                  double value) {
    Record(record_name).context[key] = value;
  }

  // Writes the collected records; prints a notice so CI logs show the
  // artifact location. No-op when `path` is empty.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [",
                 bench_name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      const RecordData& r = records_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", ", i == 0 ? "" : ",",
                   r.name.c_str());
      if (!r.context.empty()) {
        std::fprintf(f, "\"context\": {");
        size_t j = 0;
        for (const auto& [key, value] : r.context) {
          std::fprintf(f, "%s\"%s\": %.9g", j++ == 0 ? "" : ", ",
                       key.c_str(), value);
        }
        std::fprintf(f, "}, ");
      }
      std::fprintf(f, "\"metrics\": {");
      size_t j = 0;
      for (const auto& [metric, value] : r.metrics) {
        std::fprintf(f, "%s\"%s\": %.9g", j++ == 0 ? "" : ", ",
                     metric.c_str(), value);
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("bench json written to %s (%zu records)\n", path.c_str(),
                records_.size());
    return true;
  }

 private:
  struct RecordData {
    std::string name;
    std::map<std::string, double> context;
    std::map<std::string, double> metrics;
  };

  RecordData& Record(const std::string& record_name) {
    for (auto& r : records_) {
      if (r.name == record_name) return r;
    }
    records_.push_back({record_name, {}, {}});
    return records_.back();
  }

  std::string bench_name_;
  std::vector<RecordData> records_;
};

// Shared flag parsing: the path following "--json", or "" when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

// Shared flag parsing: true when "--reduced" is present (CI-sized run).
inline bool ReducedFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reduced") == 0) return true;
  }
  return false;
}

// Bench-scale dataset profiles: trimmed so every bench binary finishes in a
// couple of minutes on one CPU core while keeping Table 3's density/length
// relationships intact.
inline video::DatasetProfile BenchProfile(video::DatasetFamily family) {
  video::DatasetProfile p = video::DatasetProfile::ForFamily(family);
  switch (family) {
    case video::DatasetFamily::kBdd100kLike:
      p.num_videos = 48;
      p.frames_per_video = 500;
      // Bench scale uses a slightly denser action stream than the family
      // default (7%) so the validation split carries enough positive
      // windows for low-variance per-configuration F1 estimates.
      p.action_fraction = 0.11;
      break;
    case video::DatasetFamily::kThumos14Like:
    case video::DatasetFamily::kActivityNetLike:
      p.num_videos = 28;
      p.frames_per_video = 400;
      break;
    case video::DatasetFamily::kCityscapesLike:
    case video::DatasetFamily::kKittiLike:
      p.num_videos = 16;
      p.frames_per_video = 400;
      break;
  }
  return p;
}

// Planner options sized for benches.
inline core::QueryPlanner::Options BenchPlannerOptions(uint64_t seed = 17) {
  core::QueryPlanner::Options opts;
  opts.seed = seed;
  opts.apfg.epochs = 12;
  opts.profile.max_windows_per_config = 200;
  opts.trainer.episodes = 10;
  return opts;
}

// One evaluated method: name, accuracy metrics and throughput.
struct MethodRow {
  std::string method;
  core::PrfMetrics metrics;
  double throughput_fps = 0.0;
  double wall_seconds = 0.0;
  core::RunResult run;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRows(const std::vector<MethodRow>& rows) {
  std::printf("%-16s %8s %8s %8s %12s %10s\n", "method", "F1", "prec",
              "recall", "tput(fps)", "wall(s)");
  for (const MethodRow& r : rows) {
    std::printf("%-16s %8.3f %8.3f %8.3f %12.0f %10.2f\n", r.method.c_str(),
                r.metrics.f1, r.metrics.precision, r.metrics.recall,
                r.throughput_fps, r.wall_seconds);
  }
}

// Evaluates one localizer on the test split.
inline MethodRow Evaluate(core::Localizer* localizer,
                          const std::vector<const video::Video*>& test,
                          const std::vector<video::ActionClass>& targets) {
  MethodRow row;
  row.method = localizer->name();
  row.run = localizer->Localize(test);
  row.metrics =
      core::EvaluateVideos(test, targets, row.run.masks, core::EvalOptions{});
  row.throughput_fps = row.run.ThroughputFps();
  row.wall_seconds = row.run.wall_seconds;
  return row;
}

// Runs all five methods of Fig. 8 for one planned query. Trains the two
// probabilistic-predicate baselines on the train split first.
inline std::vector<MethodRow> RunAllMethods(
    const core::QueryPlan& plan, const video::SyntheticDataset& dataset,
    const std::vector<const video::Video*>& train,
    const std::vector<const video::Video*>& test, common::Rng* rng) {
  (void)dataset;
  std::vector<MethodRow> rows;

  // Frame-PP at the most accurate resolution.
  baselines::FramePp::Options fp_opts;
  fp_opts.nominal_resolution =
      plan.space.NominalResolutions().back();
  fp_opts.resolution_px =
      plan.space.config(plan.space.SlowestId()).spec.resolution_px;
  baselines::FramePp frame_pp(fp_opts, plan.cost_model, plan.targets, rng);
  if (frame_pp.Train(train).ok()) {
    rows.push_back(Evaluate(&frame_pp, test, plan.targets));
  }

  // Segment-PP filtering at the most accurate configuration.
  baselines::SegmentPp::Options sp_opts;
  baselines::SegmentPp segment_pp(sp_opts, plan.cost_model,
                                  plan.space.config(plan.space.SlowestId()),
                                  plan.apfg.get(), plan.targets, rng);
  if (segment_pp.Train(train).ok()) {
    rows.push_back(Evaluate(&segment_pp, test, plan.targets));
  }

  // Zeus-Sliding: fastest configuration meeting the target on validation.
  int sliding_id =
      baselines::PickSlidingConfig(plan.space, plan.accuracy_target);
  baselines::ZeusSliding sliding(plan.space.config(sliding_id),
                                 plan.apfg.get(), plan.cost_model);
  rows.push_back(Evaluate(&sliding, test, plan.targets));

  // Zeus-Heuristic over the pruned configuration frontier.
  baselines::ZeusHeuristic heuristic({}, &plan.rl_space, plan.cache.get());
  rows.push_back(Evaluate(&heuristic, test, plan.targets));

  // Zeus-RL.
  core::QueryExecutor executor(&plan);
  rows.push_back(Evaluate(&executor, test, plan.targets));
  return rows;
}

}  // namespace zeus::bench

#endif  // ZEUS_BENCH_BENCH_UTIL_H_
