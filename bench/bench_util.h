#ifndef ZEUS_BENCH_BENCH_UTIL_H_
#define ZEUS_BENCH_BENCH_UTIL_H_

// Shared helpers for the per-table / per-figure reproduction benches.
// Each bench binary regenerates one table or figure of the paper's §6 on the
// synthetic substrate (see DESIGN.md for the experiment index).

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/frame_pp.h"
#include "bench/bench_json.h"
#include "baselines/heuristic.h"
#include "baselines/segment_pp.h"
#include "baselines/sliding.h"
#include "common/logging.h"
#include "core/executor.h"
#include "core/query_planner.h"
#include "video/dataset.h"

namespace zeus::bench {

// The JSON emitter (BenchJson), --json/--reduced flag parsing, and the
// tail-latency helpers live in bench/bench_json.h.

// Bench-scale dataset profiles: trimmed so every bench binary finishes in a
// couple of minutes on one CPU core while keeping Table 3's density/length
// relationships intact.
inline video::DatasetProfile BenchProfile(video::DatasetFamily family) {
  video::DatasetProfile p = video::DatasetProfile::ForFamily(family);
  switch (family) {
    case video::DatasetFamily::kBdd100kLike:
      p.num_videos = 48;
      p.frames_per_video = 500;
      // Bench scale uses a slightly denser action stream than the family
      // default (7%) so the validation split carries enough positive
      // windows for low-variance per-configuration F1 estimates.
      p.action_fraction = 0.11;
      break;
    case video::DatasetFamily::kThumos14Like:
    case video::DatasetFamily::kActivityNetLike:
      p.num_videos = 28;
      p.frames_per_video = 400;
      break;
    case video::DatasetFamily::kCityscapesLike:
    case video::DatasetFamily::kKittiLike:
      p.num_videos = 16;
      p.frames_per_video = 400;
      break;
  }
  return p;
}

// Planner options sized for benches.
inline core::QueryPlanner::Options BenchPlannerOptions(uint64_t seed = 17) {
  core::QueryPlanner::Options opts;
  opts.seed = seed;
  opts.apfg.epochs = 12;
  opts.profile.max_windows_per_config = 200;
  opts.trainer.episodes = 10;
  return opts;
}

// One evaluated method: name, accuracy metrics and throughput.
struct MethodRow {
  std::string method;
  core::PrfMetrics metrics;
  double throughput_fps = 0.0;
  double wall_seconds = 0.0;
  core::RunResult run;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRows(const std::vector<MethodRow>& rows) {
  std::printf("%-16s %8s %8s %8s %12s %10s\n", "method", "F1", "prec",
              "recall", "tput(fps)", "wall(s)");
  for (const MethodRow& r : rows) {
    std::printf("%-16s %8.3f %8.3f %8.3f %12.0f %10.2f\n", r.method.c_str(),
                r.metrics.f1, r.metrics.precision, r.metrics.recall,
                r.throughput_fps, r.wall_seconds);
  }
}

// Evaluates one localizer on the test split.
inline MethodRow Evaluate(core::Localizer* localizer,
                          const std::vector<const video::Video*>& test,
                          const std::vector<video::ActionClass>& targets) {
  MethodRow row;
  row.method = localizer->name();
  row.run = localizer->Localize(test);
  row.metrics =
      core::EvaluateVideos(test, targets, row.run.masks, core::EvalOptions{});
  row.throughput_fps = row.run.ThroughputFps();
  row.wall_seconds = row.run.wall_seconds;
  return row;
}

// Runs all five methods of Fig. 8 for one planned query. Trains the two
// probabilistic-predicate baselines on the train split first.
inline std::vector<MethodRow> RunAllMethods(
    const core::QueryPlan& plan, const video::SyntheticDataset& dataset,
    const std::vector<const video::Video*>& train,
    const std::vector<const video::Video*>& test, common::Rng* rng) {
  (void)dataset;
  std::vector<MethodRow> rows;

  // Frame-PP at the most accurate resolution.
  baselines::FramePp::Options fp_opts;
  fp_opts.nominal_resolution =
      plan.space.NominalResolutions().back();
  fp_opts.resolution_px =
      plan.space.config(plan.space.SlowestId()).spec.resolution_px;
  baselines::FramePp frame_pp(fp_opts, plan.cost_model, plan.targets, rng);
  if (frame_pp.Train(train).ok()) {
    rows.push_back(Evaluate(&frame_pp, test, plan.targets));
  }

  // Segment-PP filtering at the most accurate configuration.
  baselines::SegmentPp::Options sp_opts;
  baselines::SegmentPp segment_pp(sp_opts, plan.cost_model,
                                  plan.space.config(plan.space.SlowestId()),
                                  plan.apfg.get(), plan.targets, rng);
  if (segment_pp.Train(train).ok()) {
    rows.push_back(Evaluate(&segment_pp, test, plan.targets));
  }

  // Zeus-Sliding: fastest configuration meeting the target on validation.
  int sliding_id =
      baselines::PickSlidingConfig(plan.space, plan.accuracy_target);
  baselines::ZeusSliding sliding(plan.space.config(sliding_id),
                                 plan.apfg.get(), plan.cost_model);
  rows.push_back(Evaluate(&sliding, test, plan.targets));

  // Zeus-Heuristic over the pruned configuration frontier.
  baselines::ZeusHeuristic heuristic({}, &plan.rl_space, plan.cache.get());
  rows.push_back(Evaluate(&heuristic, test, plan.targets));

  // Zeus-RL.
  core::QueryExecutor executor(&plan);
  rows.push_back(Evaluate(&executor, test, plan.targets));
  return rows;
}

}  // namespace zeus::bench

#endif  // ZEUS_BENCH_BENCH_UTIL_H_
