// Micro-benchmarks (google-benchmark) for the substrate hot paths: 3-D
// convolution, segment decode, replay-buffer ops, DQN action selection.
// These are the per-invocation costs that the CostModel abstracts.

#include <benchmark/benchmark.h>

#include "apfg/r3d.h"
#include "common/rng.h"
#include "rl/dqn_agent.h"
#include "rl/replay_buffer.h"
#include "tensor/tensor_ops.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace {

using namespace zeus;

void BM_Conv3dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::R3dLite model(apfg::R3dLite::Options{}, &rng);
  const int l = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  tensor::Tensor x({1, 1, l, r, r});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv3dForward)->Args({2, 15})->Args({8, 15})->Args({8, 30})->Args({16, 20});

void BM_SegmentDecode(benchmark::State& state) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 1;
  profile.frames_per_video = 200;
  auto ds = video::SyntheticDataset::Generate(profile, 3);
  video::DecodeSpec spec{static_cast<int>(state.range(0)), 8, 2};
  int start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        video::SegmentDecoder::Decode(ds.video(0), start, spec));
    start = (start + 16) % 150;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentDecode)->Arg(15)->Arg(30);

void BM_MatMul(benchmark::State& state) {
  common::Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  tensor::Tensor a({n, n}), b({n, n});
  tensor::FillGaussian(&a, &rng, 1.0f);
  tensor::FillGaussian(&b, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_ReplayBufferPushSample(benchmark::State& state) {
  rl::ReplayBuffer buf(2048);
  common::Rng rng(4);
  rl::Experience proto;
  proto.state.assign(48, 0.5f);
  proto.next_state.assign(48, 0.25f);
  for (auto _ : state) {
    buf.Push(proto);
    if (buf.CanSample(64)) {
      benchmark::DoNotOptimize(buf.Sample(64, &rng));
    }
  }
}
BENCHMARK(BM_ReplayBufferPushSample);

void BM_DqnGreedyAction(benchmark::State& state) {
  common::Rng rng(5);
  rl::DqnAgent::Options opts;
  opts.state_dim = 48;
  opts.num_actions = 10;
  rl::DqnAgent agent(opts, &rng);
  std::vector<float> s(48, 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.GreedyAction(s));
  }
}
BENCHMARK(BM_DqnGreedyAction);

}  // namespace

BENCHMARK_MAIN();
