// Micro-benchmarks (google-benchmark) for the substrate hot paths: 3-D
// convolution, segment decode, replay-buffer ops, DQN action selection.
// These are the per-invocation costs that the CostModel abstracts.
//
// The extractor and matmul benches are parameterized by compute path so one
// run reports naive (the seed's scalar loop nest) vs. GEMM vs. parallel
// GEMM throughput side by side. Arg convention: the trailing two args are
// (path, threads); threads > 1 attaches a ThreadPool to the context. Path
// codes (mirrored as the `compute_path` context field of the tail records):
//
//   0 = ComputePath::kReference   (seed's scalar loop nest)
//   1 = ComputePath::kGemm, auto ISA (best the CPU supports)
//   2 = ComputePath::kGemm, forced AVX2 tier
//   3 = ComputePath::kGemm, forced AVX-512 tier
//   4 = ComputePath::kInt8        (quantized GEMM, inference only)
//
// Forced tiers the CPU can't run are clamped by ResolveGemmIsa (with a
// one-time warning), so the full grid is safe on any machine.
//
// Besides the google-benchmark grid, the binary emits tail-latency records
// (p50/p95/p99 per invocation, bench_json.h schema) when run with
// --json <path>; these are what the CI bench-smoke gate watches.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apfg/frame2d.h"
#include "apfg/lite3d.h"
#include "apfg/r3d.h"
#include "bench/bench_json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/conv3d.h"
#include "rl/dqn_agent.h"
#include "rl/replay_buffer.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace {

using namespace zeus;

// Builds the compute context selected by the benchmark's (path, threads)
// args; owns the pool backing it.
struct BenchCtx {
  BenchCtx(int64_t path, int64_t threads) {
    if (threads > 1) pool = std::make_unique<common::ThreadPool>(
        static_cast<int>(threads));
    ctx.pool = pool.get();
    switch (path) {
      case 0: ctx.path = tensor::ComputePath::kReference; break;
      case 2:
        ctx.path = tensor::ComputePath::kGemm;
        ctx.isa = tensor::GemmIsa::kAvx2;
        break;
      case 3:
        ctx.path = tensor::ComputePath::kGemm;
        ctx.isa = tensor::GemmIsa::kAvx512;
        break;
      case 4: ctx.path = tensor::ComputePath::kInt8; break;
      default: ctx.path = tensor::ComputePath::kGemm; break;
    }
  }
  std::unique_ptr<common::ThreadPool> pool;
  tensor::ComputeContext ctx;
};

// Appends the naive/GEMM/parallel-GEMM/forced-tier/int8 grid to an
// extractor benchmark.
void PathArgs(benchmark::internal::Benchmark* b) {
  b->Args({0, 1})->Args({1, 1})->Args({1, 2})->Args({1, 4})
      ->Args({2, 1})->Args({3, 1})->Args({4, 1});
}

// R3D-shaped forward: the full R3dLite conv trunk + heads on one segment
// decoded at the paper's most accurate configuration scale.
void BM_R3dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::R3dLite model(apfg::R3dLite::Options{}, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  model.SetComputeContext(&bc.ctx);
  tensor::Tensor x({1, 1, 16, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_R3dForward)->Apply(PathArgs);

// R3D-shaped single Conv3d forward (the stem block), isolating the lowered
// kernel from pooling/linear overhead.
void BM_Conv3dForwardR3dStem(benchmark::State& state) {
  common::Rng rng(1);
  nn::Conv3d::Options opts;
  opts.stride = {1, 2, 2};
  nn::Conv3d conv(1, 8, opts, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  conv.SetComputeContext(&bc.ctx);
  tensor::Tensor x({1, 1, 16, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv3dForwardR3dStem)->Apply(PathArgs);

// Batched stem conv (N=8): exercises the batch-split policy — with a pool
// attached, whole images fan out to workers (outer parallelism) instead of
// splitting each image's GEMM.
void BM_Conv3dForwardBatched(benchmark::State& state) {
  common::Rng rng(1);
  nn::Conv3d::Options opts;
  opts.stride = {1, 2, 2};
  nn::Conv3d conv(1, 8, opts, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  conv.SetComputeContext(&bc.ctx);
  tensor::Tensor x({8, 1, 16, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Conv3dForwardBatched)
    ->Args({1, 1})->Args({1, 4})->Args({1, 8})->Args({4, 1});

// Control for the batch-split speedup claim: same batched forward with the
// batch dimension pinned serial (ctx.batch_split = false), so threads only
// ever split inside each image's GEMM. The {1, 8} delta between this and
// BM_Conv3dForwardBatched is the outer-parallelism win.
void BM_Conv3dForwardBatchedInnerOnly(benchmark::State& state) {
  common::Rng rng(1);
  nn::Conv3d::Options opts;
  opts.stride = {1, 2, 2};
  nn::Conv3d conv(1, 8, opts, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  bc.ctx.batch_split = false;
  conv.SetComputeContext(&bc.ctx);
  tensor::Tensor x({8, 1, 16, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Conv3dForwardBatchedInnerOnly)->Args({1, 4})->Args({1, 8});

// Lite3D-shaped forward: the Segment-PP probabilistic predicate.
void BM_Lite3dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::LiteSegmentNet model(apfg::LiteSegmentNet::Options{}, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  model.SetComputeContext(&bc.ctx);
  tensor::Tensor x({1, 1, 8, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lite3dForward)->Apply(PathArgs);

// Frame2D-shaped forward: one Frame-PP batch of 8 frames.
void BM_Frame2dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::Frame2dNet model(apfg::Frame2dNet::Options{}, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  model.SetComputeContext(&bc.ctx);
  tensor::Tensor x({8, 1, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Frame2dForward)->Apply(PathArgs);

// Legacy whole-model sweep over the paper's segment shapes (GEMM path).
void BM_Conv3dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::R3dLite model(apfg::R3dLite::Options{}, &rng);
  const int l = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  tensor::Tensor x({1, 1, l, r, r});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv3dForward)->Args({2, 15})->Args({8, 15})->Args({8, 30})->Args({16, 20});

void BM_SegmentDecode(benchmark::State& state) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 1;
  profile.frames_per_video = 200;
  auto ds = video::SyntheticDataset::Generate(profile, 3);
  video::DecodeSpec spec{static_cast<int>(state.range(0)), 8, 2};
  int start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        video::SegmentDecoder::Decode(ds.video(0), start, spec));
    start = (start + 16) % 150;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentDecode)->Arg(15)->Arg(30);

void BM_MatMul(benchmark::State& state) {
  common::Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  BenchCtx bc(state.range(1), state.range(2));
  tensor::Tensor a({n, n}), b({n, n});
  tensor::FillGaussian(&a, &rng, 1.0f);
  tensor::FillGaussian(&b, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b, &bc.ctx));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->Args({32, 0, 1})->Args({32, 1, 1})
    ->Args({64, 0, 1})->Args({64, 1, 1})
    ->Args({128, 0, 1})->Args({128, 1, 1})->Args({128, 1, 4})
    ->Args({256, 0, 1})->Args({256, 1, 1})->Args({256, 1, 4});

void BM_ReplayBufferPushSample(benchmark::State& state) {
  rl::ReplayBuffer buf(2048);
  common::Rng rng(4);
  rl::Experience proto;
  proto.state.assign(48, 0.5f);
  proto.next_state.assign(48, 0.25f);
  for (auto _ : state) {
    buf.Push(proto);
    if (buf.CanSample(64)) {
      benchmark::DoNotOptimize(buf.Sample(64, &rng));
    }
  }
}
BENCHMARK(BM_ReplayBufferPushSample);

void BM_DqnGreedyAction(benchmark::State& state) {
  common::Rng rng(5);
  rl::DqnAgent::Options opts;
  opts.state_dim = 48;
  opts.num_actions = 10;
  rl::DqnAgent agent(opts, &rng);
  std::vector<float> s(48, 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.GreedyAction(s));
  }
}
BENCHMARK(BM_DqnGreedyAction);

// ---- Tail-latency records (--json) ----------------------------------------
//
// Per-invocation p50/p95/p99 for the substrate hot paths the serving layer
// sits on, across compute paths. Each record carries compute_path /
// batch_size / threads context so the regression gate never compares
// measurements across paths or workload shapes (docs/CI.md).
bool EmitTailRecords(const std::string& json_path) {
  bench::BenchJson json("bench_micro_substrate");
  common::Rng rng(1);
  constexpr int kIters = 120;  // >= 100: the p99 rank exists
  constexpr int kWarmup = 10;
  struct PathSpec {
    const char* name;
    int64_t path;
  };
  const PathSpec kPaths[] = {{"gemm", 1}, {"int8", 4}};

  nn::Conv3d::Options copts;
  copts.stride = {1, 2, 2};
  nn::Conv3d conv(1, 8, copts, &rng);
  tensor::Tensor x({8, 1, 16, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  std::printf("\ntail latency (%d samples each):\n", kIters);
  for (const PathSpec& p : kPaths) {
    BenchCtx bc(p.path, 1);
    conv.SetComputeContext(&bc.ctx);
    const bench::TailStats t = bench::MeasureTail(kIters, kWarmup, [&] {
      benchmark::DoNotOptimize(conv.Forward(x, false));
    });
    const std::string rec = std::string("tail/conv3d_stem/") + p.name;
    json.AddContext(rec, "compute_path", static_cast<double>(p.path));
    json.AddContext(rec, "batch_size", 8);
    json.AddContext(rec, "threads", 1);
    bench::AddTailMetrics(&json, rec, "forward", t);
    std::printf("  %-24s p50 %8.1fus  p95 %8.1fus  p99 %8.1fus\n",
                rec.c_str(), t.p50_seconds * 1e6, t.p95_seconds * 1e6,
                t.p99_seconds * 1e6);
  }

  apfg::R3dLite model(apfg::R3dLite::Options{}, &rng);
  tensor::Tensor seg({8, 1, 8, 30, 30});
  tensor::FillGaussian(&seg, &rng, 1.0f);
  for (const PathSpec& p : kPaths) {
    BenchCtx bc(p.path, 1);
    model.SetComputeContext(&bc.ctx);
    const bench::TailStats t = bench::MeasureTail(kIters, kWarmup, [&] {
      benchmark::DoNotOptimize(model.Logits(seg, false));
    });
    const std::string rec = std::string("tail/r3d_forward/") + p.name;
    json.AddContext(rec, "compute_path", static_cast<double>(p.path));
    json.AddContext(rec, "batch_size", 8);
    json.AddContext(rec, "threads", 1);
    bench::AddTailMetrics(&json, rec, "forward", t);
    std::printf("  %-24s p50 %8.1fus  p95 %8.1fus  p99 %8.1fus\n",
                rec.c_str(), t.p50_seconds * 1e6, t.p95_seconds * 1e6,
                t.p99_seconds * 1e6);
  }
  return json.WriteTo(json_path);
}

}  // namespace

// Custom main: google-benchmark rejects flags it does not know, so --json
// <path> (the bench_json.h convention every other bench binary follows) is
// stripped from argv before Initialize, and the tail-latency records are
// emitted after the registered benchmarks run.
int main(int argc, char** argv) {
  const std::string json_path = zeus::bench::JsonPathFromArgs(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return EmitTailRecords(json_path) ? 0 : 1;
}
