// Micro-benchmarks (google-benchmark) for the substrate hot paths: 3-D
// convolution, segment decode, replay-buffer ops, DQN action selection.
// These are the per-invocation costs that the CostModel abstracts.
//
// The extractor and matmul benches are parameterized by compute path so one
// run reports naive (the seed's scalar loop nest) vs. GEMM vs. parallel
// GEMM throughput side by side. Arg convention: the trailing two args are
// (path, threads) with path 0 = ComputePath::kReference and 1 = kGemm;
// threads > 1 attaches a ThreadPool to the context.

#include <benchmark/benchmark.h>

#include <memory>

#include "apfg/frame2d.h"
#include "apfg/lite3d.h"
#include "apfg/r3d.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/conv3d.h"
#include "rl/dqn_agent.h"
#include "rl/replay_buffer.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace {

using namespace zeus;

// Builds the compute context selected by the benchmark's (path, threads)
// args; owns the pool backing it.
struct BenchCtx {
  BenchCtx(int64_t path, int64_t threads) {
    if (threads > 1) pool = std::make_unique<common::ThreadPool>(
        static_cast<int>(threads));
    ctx.pool = pool.get();
    ctx.path = path == 0 ? tensor::ComputePath::kReference
                         : tensor::ComputePath::kGemm;
  }
  std::unique_ptr<common::ThreadPool> pool;
  tensor::ComputeContext ctx;
};

// Appends the naive/GEMM/parallel-GEMM grid to an extractor benchmark.
void PathArgs(benchmark::internal::Benchmark* b) {
  b->Args({0, 1})->Args({1, 1})->Args({1, 2})->Args({1, 4});
}

// R3D-shaped forward: the full R3dLite conv trunk + heads on one segment
// decoded at the paper's most accurate configuration scale.
void BM_R3dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::R3dLite model(apfg::R3dLite::Options{}, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  model.SetComputeContext(&bc.ctx);
  tensor::Tensor x({1, 1, 16, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_R3dForward)->Apply(PathArgs);

// R3D-shaped single Conv3d forward (the stem block), isolating the lowered
// kernel from pooling/linear overhead.
void BM_Conv3dForwardR3dStem(benchmark::State& state) {
  common::Rng rng(1);
  nn::Conv3d::Options opts;
  opts.stride = {1, 2, 2};
  nn::Conv3d conv(1, 8, opts, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  conv.SetComputeContext(&bc.ctx);
  tensor::Tensor x({1, 1, 16, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv3dForwardR3dStem)->Apply(PathArgs);

// Lite3D-shaped forward: the Segment-PP probabilistic predicate.
void BM_Lite3dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::LiteSegmentNet model(apfg::LiteSegmentNet::Options{}, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  model.SetComputeContext(&bc.ctx);
  tensor::Tensor x({1, 1, 8, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lite3dForward)->Apply(PathArgs);

// Frame2D-shaped forward: one Frame-PP batch of 8 frames.
void BM_Frame2dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::Frame2dNet model(apfg::Frame2dNet::Options{}, &rng);
  BenchCtx bc(state.range(0), state.range(1));
  model.SetComputeContext(&bc.ctx);
  tensor::Tensor x({8, 1, 30, 30});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Frame2dForward)->Apply(PathArgs);

// Legacy whole-model sweep over the paper's segment shapes (GEMM path).
void BM_Conv3dForward(benchmark::State& state) {
  common::Rng rng(1);
  apfg::R3dLite model(apfg::R3dLite::Options{}, &rng);
  const int l = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  tensor::Tensor x({1, 1, l, r, r});
  tensor::FillGaussian(&x, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Logits(x, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv3dForward)->Args({2, 15})->Args({8, 15})->Args({8, 30})->Args({16, 20});

void BM_SegmentDecode(benchmark::State& state) {
  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = 1;
  profile.frames_per_video = 200;
  auto ds = video::SyntheticDataset::Generate(profile, 3);
  video::DecodeSpec spec{static_cast<int>(state.range(0)), 8, 2};
  int start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        video::SegmentDecoder::Decode(ds.video(0), start, spec));
    start = (start + 16) % 150;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentDecode)->Arg(15)->Arg(30);

void BM_MatMul(benchmark::State& state) {
  common::Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  BenchCtx bc(state.range(1), state.range(2));
  tensor::Tensor a({n, n}), b({n, n});
  tensor::FillGaussian(&a, &rng, 1.0f);
  tensor::FillGaussian(&b, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b, &bc.ctx));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->Args({32, 0, 1})->Args({32, 1, 1})
    ->Args({64, 0, 1})->Args({64, 1, 1})
    ->Args({128, 0, 1})->Args({128, 1, 1})->Args({128, 1, 4})
    ->Args({256, 0, 1})->Args({256, 1, 1})->Args({256, 1, 4});

void BM_ReplayBufferPushSample(benchmark::State& state) {
  rl::ReplayBuffer buf(2048);
  common::Rng rng(4);
  rl::Experience proto;
  proto.state.assign(48, 0.5f);
  proto.next_state.assign(48, 0.25f);
  for (auto _ : state) {
    buf.Push(proto);
    if (buf.CanSample(64)) {
      benchmark::DoNotOptimize(buf.Sample(64, &rng));
    }
  }
}
BENCHMARK(BM_ReplayBufferPushSample);

void BM_DqnGreedyAction(benchmark::State& state) {
  common::Rng rng(5);
  rl::DqnAgent::Options opts;
  opts.state_dim = 48;
  opts.num_actions = 10;
  rl::DqnAgent agent(opts, &rng);
  std::vector<float> s(48, 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.GreedyAction(s));
  }
}
BENCHMARK(BM_DqnGreedyAction);

}  // namespace

BENCHMARK_MAIN();
