// Figure 10: knob ablation — disable (freeze to mid value) each of the
// Resolution / SegmentLength / SamplingRate knobs and measure Zeus-RL's
// throughput drop on CrossRight and LeftTurn.

#include "bench/bench_util.h"
#include "rl/trainer.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Figure 10: impact of disabling each knob on Zeus-RL");

  for (auto cls :
       {video::ActionClass::kCrossRight, video::ActionClass::kLeftTurn}) {
    auto ds = video::SyntheticDataset::Generate(
        bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
    auto opts = bench::BenchPlannerOptions();
    core::QueryPlanner planner(&ds, opts);
    auto plan_r = planner.PlanForClasses({cls}, 0.85);
    if (!plan_r.ok()) continue;
    core::QueryPlan plan = plan_r.value();
    auto train = planner.SplitVideos(ds.train_indices());
    auto test = planner.SplitVideos(ds.test_indices());

    std::printf("\n--- %s ---\n", video::ActionClassName(cls));
    std::printf("%-20s %12s %8s %10s\n", "variant", "tput(fps)", "F1",
                "tput drop");

    // Baseline: full knob space (already trained).
    core::QueryExecutor executor(&plan);
    auto base = bench::Evaluate(&executor, test, plan.targets);
    std::printf("%-20s %12.0f %8.3f %10s\n", "Zeus (all knobs)",
                base.throughput_fps, base.metrics.f1, "-");

    for (core::Knob knob : {core::Knob::kResolution, core::Knob::kSegmentLength,
                            core::Knob::kSamplingRate}) {
      // Freeze the knob in the FULL grid, then re-prune and retrain the
      // agent over the reduced space.
      core::QueryPlan ablated = plan;
      core::ConfigurationSpace frozen = plan.space.WithFrozenKnob(knob);
      ablated.rl_space = frozen.PruneToFrontier(opts.max_rl_configs);
      common::Rng rng(200 + static_cast<int>(knob));
      rl::VideoEnv env(train, &ablated.rl_space, ablated.cache.get(),
                       ablated.targets, ablated.env_opts);
      rl::DqnTrainer::Options trainer_opts = opts.trainer;
      trainer_opts.accuracy_target = 0.85;
      rl::DqnTrainer trainer(&env, trainer_opts, &rng);
      trainer.Train();
      ablated.agent = trainer.ReleaseAgent();

      core::QueryExecutor ablated_exec(&ablated);
      auto row = bench::Evaluate(&ablated_exec, test, ablated.targets);
      double drop = base.throughput_fps > 0
                        ? 100.0 * (1.0 - row.throughput_fps /
                                             base.throughput_fps)
                        : 0.0;
      std::printf("-%-19s %12.0f %8.3f %9.0f%%\n", core::KnobName(knob),
                  row.throughput_fps, row.metrics.f1, drop);
    }
  }
  std::printf("\npaper (Fig. 10): disabling SamplingRate / SegmentLength / "
              "Resolution cuts throughput by 62%% / 51%% / 36%% — "
              "SamplingRate and SegmentLength are the key knobs.\n");
  return 0;
}
