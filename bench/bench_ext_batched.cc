// Extension bench (§6.4 discussion): inter-video batched execution.
// The sequential Zeus-RL executor cannot batch because each decision feeds
// the next input; across videos the traversals are independent, so
// same-configuration invocations batch into one launch. This bench sweeps
// the maximum batch width and reports modeled throughput; masks are
// verified identical to the sequential executor at every width.

#include "bench_util.h"
#include "core/batched_executor.h"
#include "core/executor.h"

namespace zeus {
namespace {

int Main() {
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Extension: inter-video batched execution (CrossRight)");

  auto profile = bench::BenchProfile(video::DatasetFamily::kBdd100kLike);
  auto dataset = video::SyntheticDataset::Generate(profile, 17);
  auto opts = bench::BenchPlannerOptions(17);
  core::QueryPlanner planner(&dataset, opts);
  auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.85);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto test = planner.SplitVideos(dataset.test_indices());

  core::QueryExecutor sequential(&plan.value());
  auto base = sequential.Localize(test);
  auto base_metrics = core::EvaluateVideos(test, plan.value().targets,
                                           base.masks, core::EvalOptions{});
  std::printf("%-12s %12s %10s %8s %10s\n", "max_batch", "tput(fps)",
              "gpu(s)", "F1", "speedup");
  std::printf("%-12s %12.0f %10.4f %8.3f %10s\n", "sequential",
              base.ThroughputFps(), base.gpu_seconds, base_metrics.f1, "1.00x");

  for (int width : {1, 2, 4, 8, 16, 32}) {
    core::BatchedExecutor::Options bopts;
    bopts.max_batch = width;
    core::BatchedExecutor batched(&plan.value(), bopts);
    auto run = batched.Localize(test);
    auto metrics = core::EvaluateVideos(test, plan.value().targets, run.masks,
                                        core::EvalOptions{});
    bool identical = run.masks == base.masks;
    std::printf("%-12d %12.0f %10.4f %8.3f %9.2fx%s\n", width,
                run.ThroughputFps(), run.gpu_seconds, metrics.f1,
                base.gpu_seconds / run.gpu_seconds,
                identical ? "" : "  (MASK MISMATCH!)");
  }
  std::printf(
      "\nexpectation: throughput grows with batch width (launch overhead\n"
      "amortizes), saturating once per-frame compute dominates; accuracy\n"
      "is identical at every width.\n");
  return 0;
}

}  // namespace
}  // namespace zeus

int main() { return zeus::Main(); }
