// Figure 13: domain adaptation — all methods trained on the BDD-like
// dataset and evaluated on Cityscapes-like (CrossRight + LeftTurn) and
// KITTI-like (LeftTurn only; KITTI has no CrossRight instances) datasets,
// which shift scene statistics and agent appearance (§6.6).

#include "bench/bench_util.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Figure 13: domain adaptation (train BDD-like)");

  auto bdd = video::SyntheticDataset::Generate(
      bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
  auto cityscapes = video::SyntheticDataset::Generate(
      bench::BenchProfile(video::DatasetFamily::kCityscapesLike), 43);
  auto kitti = video::SyntheticDataset::Generate(
      bench::BenchProfile(video::DatasetFamily::kKittiLike), 44);

  struct Case {
    const char* name;
    const video::SyntheticDataset* target;
    video::ActionClass cls;
  };
  const Case cases[] = {
      {"CrossRight -> Cityscapes", &cityscapes,
       video::ActionClass::kCrossRight},
      {"LeftTurn -> Cityscapes", &cityscapes, video::ActionClass::kLeftTurn},
      {"LeftTurn -> KITTI", &kitti, video::ActionClass::kLeftTurn},
  };

  core::QueryPlanner planner(&bdd, bench::BenchPlannerOptions());
  auto train = planner.SplitVideos(bdd.train_indices());
  for (const Case& c : cases) {
    auto plan = planner.PlanForClasses({c.cls}, 0.85);
    if (!plan.ok()) continue;
    // Evaluate on the *target* dataset's videos (all of them).
    std::vector<const video::Video*> test;
    for (size_t i = 0; i < c.target->num_videos(); ++i) {
      test.push_back(&c.target->video(i));
    }
    common::Rng rng(11);
    auto rows = bench::RunAllMethods(plan.value(), *c.target, train, test,
                                     &rng);
    std::printf("\n--- %s ---\n", c.name);
    bench::PrintRows(rows);
  }
  std::printf("\npaper (Fig. 13): every method drops a few accuracy points "
              "under domain shift (~2.5%%); the relative ordering is "
              "preserved and Zeus-RL keeps its throughput advantage.\n");
  return 0;
}
