// Table 2: per-configuration throughput and accuracy for the CrossRight
// query. The paper lists four illustrative configurations; we print the
// whole profiled frontier plus the four rows closest to the paper's.

#include "bench/bench_util.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Table 2: configuration throughput vs accuracy (CrossRight)");

  auto ds = video::SyntheticDataset::Generate(
      bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
  core::QueryPlanner planner(&ds, bench::BenchPlannerOptions());
  auto plan_r = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.85);
  if (!plan_r.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 plan_r.status().ToString().c_str());
    return 1;
  }
  const core::QueryPlan& plan = plan_r.value();

  std::printf("%-12s %-8s %-8s %14s %10s\n", "Resolution", "SegLen",
              "SampRate", "Throughput(fps)", "F1");
  // Sort by throughput ascending, print the Pareto frontier (the useful
  // configurations, analogous to the paper's illustrative list).
  for (const core::Configuration& c : plan.rl_space.configs()) {
    std::printf("%-12d %-8d %-8d %14.0f %10.2f\n", c.nominal_resolution,
                c.nominal_segment_length, c.sampling_rate, c.throughput_fps,
                c.validation_f1);
  }

  std::printf("\nfull grid (64 configurations), selected rows:\n");
  std::printf("%-12s %-8s %-8s %14s %10s\n", "Resolution", "SegLen",
              "SampRate", "Throughput(fps)", "F1");
  for (const core::Configuration& c : plan.space.configs()) {
    bool paper_row = (c.nominal_resolution == 150 &&
                      c.nominal_segment_length == 4 && c.sampling_rate == 8) ||
                     (c.nominal_resolution == 200 &&
                      c.nominal_segment_length == 4 && c.sampling_rate == 4) ||
                     (c.nominal_resolution == 250 &&
                      c.nominal_segment_length == 6 && c.sampling_rate == 2) ||
                     (c.nominal_resolution == 300 &&
                      c.nominal_segment_length == 6 && c.sampling_rate == 1);
    if (!paper_row) continue;
    std::printf("%-12d %-8d %-8d %14.0f %10.2f\n", c.nominal_resolution,
                c.nominal_segment_length, c.sampling_rate, c.throughput_fps,
                c.validation_f1);
  }
  std::printf("\npaper (Table 2): throughput 1282/553/285/115 fps, "
              "F1 0.57/0.82/0.86/0.91 — expect the same inverse relation.\n");
  return 0;
}
