// Live-stream soak: sustained ingest into a streamable dataset with
// concurrent SubscribeQuery consumers and the autoscaler on — the serving
// shape the streaming refactor exists for. One plan is trained up front;
// every appended block then re-executes that plan over the sliding window,
// so the whole soak runs with planner_runs pinned at the warm-up count.
//
//   bench_stream_soak                    # full-size soak
//   bench_stream_soak --reduced          # CI-sized (fewer ticks, smaller set)
//   bench_stream_soak --json PATH        # machine-readable results
//   bench_stream_soak --subscribers N    # concurrent consumers (default 2)
//   bench_stream_soak --ticks N          # appended blocks (default 12 / 6)
//
// The binary is a functional gate on top of the metric trail it leaves
// (like bench_fig9): it exits non-zero if the streaming contract breaks
// live — a subscriber misses an epoch, an incremental answer arrives
// non-certain, or the planner re-runs mid-soak.
//
// Emitted metrics (docs/CI.md schema; identities in bench/baseline.json):
//   ingest_fps          test-split frames ingested per wall second
//   update_p95_seconds  append-to-delivered incremental-result latency
//   feature_hit_ratio   FeatureCache hits / (hits + misses): window reuse
//   wall_seconds        whole-soak wall clock (informational, see
//                       bench/gate_overrides.json — timing metrics here are
//                       scheduler-noise trails; the hit ratio is the gated
//                       reuse contract)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "engine/engine_group.h"

namespace {

constexpr char kSql[] =
    "SELECT segment_ids FROM UDF(video) "
    "WHERE action_class = 'cross-right' AND accuracy >= 85%";

}  // namespace

int main(int argc, char** argv) {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);

  const bool reduced = bench::ReducedFromArgs(argc, argv);
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  int subscribers = 2;
  int ticks = reduced ? 6 : 12;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--subscribers") == 0) {
      subscribers = std::max(1, std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--ticks") == 0) {
      ticks = std::max(1, std::atoi(argv[i + 1]));
    }
  }

  bench::PrintHeader(common::Format(
      "Live-stream soak: %d tick(s) x %d frames, %d subscriber(s)%s", ticks,
      static_cast<int>(video::SyntheticDataset::kStreamBlockFrames),
      subscribers, reduced ? " (reduced)" : ""));
  bench::BenchJson json("bench_stream_soak");

  video::DatasetProfile profile =
      bench::BenchProfile(video::DatasetFamily::kBdd100kLike);
  profile.num_videos = reduced ? 10 : 16;
  profile.frames_per_video = reduced ? 160 : 240;

  engine::EngineGroup::Options gopts;
  gopts.engine.num_workers = 2;
  gopts.engine.max_pending = subscribers * (ticks + 2) + 8;
  gopts.engine.planner = zeus::bench::BenchPlannerOptions();
  if (reduced) {
    gopts.engine.planner.apfg.epochs = 6;
    gopts.engine.planner.profile.max_windows_per_config = 100;
    gopts.engine.planner.trainer.episodes = 6;
  }
  // The self-operating leg: per-dataset signals (one hot stream drowning
  // its home shard while the group average stays calm) may scale the group
  // mid-soak. Whatever the policy chooses, answers stay bit-identical —
  // the final shard count is recorded as an informational trail.
  gopts.autoscale.enabled = true;
  gopts.autoscale.min_shards = 1;
  gopts.autoscale.max_shards = 2;
  gopts.autoscale.up_dataset_queue_depth = 6.0;
  gopts.autoscale.sustain_samples = 2;
  gopts.autoscale.cooldown_samples = 4;
  gopts.autoscale.sample_interval = std::chrono::milliseconds(50);
  engine::EngineGroup group(gopts);

  const std::string name = "soak";
  auto st = group.RegisterDataset(
      name, video::SyntheticDataset::Generate(profile, /*seed=*/17));
  if (!st.ok()) {
    std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const long test_videos =
      static_cast<long>(group.dataset(name)->test_indices().size());

  common::WallTimer total;

  // Warm-up: one blocking query trains the plan every window run reuses.
  auto warm = group.Execute(name, kSql);
  if (!warm.ok()) {
    std::fprintf(stderr, "warmup failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  const long planner_baseline = group.planner_runs();
  std::printf("plan trained in %.1f s (planner_runs=%ld); soak begins\n",
              warm.value().plan_seconds, planner_baseline);

  // Attach the consumers and drain each one's immediate first window (the
  // subscription answers once on attach, before any append).
  struct Consumer {
    engine::SubscriptionTicket ticket;
    uint64_t last_seq = 0;
  };
  std::vector<Consumer> consumers;
  engine::SubscribeOptions sopts;
  sopts.window_frames = 0;  // full prefix: bit-identical to a one-shot
  for (int s = 0; s < subscribers; ++s) {
    auto sub = group.Subscribe(name, kSql, sopts);
    if (!sub.ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   sub.status().ToString().c_str());
      return 1;
    }
    auto first = sub.value().Next(0, /*timeout_ms=*/60000);
    if (!first.ok()) {
      std::fprintf(stderr, "first window failed: %s\n",
                   first.status().ToString().c_str());
      return 1;
    }
    consumers.push_back({sub.value(), first.value().seq});
  }

  // The soak: append one stream block per tick; every consumer must see an
  // update covering the new epoch. The append-to-delivery latency is the
  // freshness metric a live dashboard would feel.
  std::vector<double> update_latency;
  update_latency.reserve(static_cast<size_t>(ticks * subscribers));
  common::WallTimer ingest;
  long frames_ingested = 0;
  uint64_t last_epoch = 0;
  for (int tick = 0; tick < ticks; ++tick) {
    common::WallTimer t0;
    auto appended =
        group.AppendFrames(name, video::SyntheticDataset::kStreamBlockFrames);
    if (!appended.ok()) {
      std::fprintf(stderr, "append %d failed: %s\n", tick,
                   appended.status().ToString().c_str());
      return 1;
    }
    frames_ingested += appended.value().appended * test_videos;
    last_epoch = appended.value().frame_epoch;
    for (Consumer& c : consumers) {
      // Drain until this consumer's freshest answer covers the epoch just
      // committed (a slow consumer may receive a conflated later window —
      // that still covers the epoch, drops are counted, frames never lost).
      for (;;) {
        auto u = c.ticket.Next(c.last_seq, /*timeout_ms=*/60000);
        if (!u.ok()) {
          std::fprintf(stderr, "tick %d: subscriber poll failed: %s\n", tick,
                       u.status().ToString().c_str());
          return 1;
        }
        c.last_seq = u.value().seq;
        if (u.value().result.consistency != engine::Consistency::kCertain) {
          std::fprintf(stderr, "tick %d: non-certain incremental answer\n",
                       tick);
          return 1;
        }
        if (u.value().result.frame_epoch >= appended.value().frame_epoch) {
          update_latency.push_back(t0.ElapsedSeconds());
          break;
        }
      }
    }
  }
  const double ingest_s = ingest.ElapsedSeconds();

  // The reuse contract, asserted live: the soak must not have trained a
  // plan, and the FeatureCache must have served every already-seen frame
  // from cache (misses only past each window's previous high-water mark).
  if (group.planner_runs() != planner_baseline) {
    std::fprintf(stderr,
                 "planner ran mid-soak (%ld vs baseline %ld) — a window "
                 "re-execution fell off the cached plan\n",
                 group.planner_runs(), planner_baseline);
    return 1;
  }
  const engine::GroupStats stats = group.Stats();
  const double feature_total =
      static_cast<double>(stats.feature_hits + stats.feature_misses);
  const double hit_ratio =
      feature_total > 0
          ? static_cast<double>(stats.feature_hits) / feature_total
          : 0.0;
  const double ingest_fps =
      ingest_s > 0 ? static_cast<double>(frames_ingested) / ingest_s : 0.0;

  long dropped = 0;
  for (Consumer& c : consumers) {
    dropped += c.ticket.dropped();
    c.ticket.Cancel();
  }

  bench::TailStats tail;
  tail.samples = static_cast<int>(update_latency.size());
  tail.p50_seconds = bench::PercentileOf(&update_latency, 0.50);
  tail.p95_seconds = bench::PercentileOf(&update_latency, 0.95);
  tail.p99_seconds = bench::PercentileOf(&update_latency, 0.99);

  std::printf(
      "\nsoak done: %ld frames ingested in %.1f s (%.0f fps), epoch %llu; "
      "update latency p50/p95 %.3f/%.3f s; feature cache %.1f%% hits "
      "(%ld/%ld, %ld evictions); %ld update(s) conflated; final shards %d "
      "(%ld resize(s))\n",
      frames_ingested, ingest_s, ingest_fps,
      static_cast<unsigned long long>(last_epoch), tail.p50_seconds,
      tail.p95_seconds, 100.0 * hit_ratio, stats.feature_hits,
      stats.feature_hits + stats.feature_misses, stats.feature_evictions,
      dropped, stats.num_shards, stats.resizes);

  const std::string rec = "soak";
  json.AddContext(rec, "subscribers", static_cast<double>(subscribers));
  json.AddContext(rec, "ticks", static_cast<double>(ticks));
  json.Add(rec, "ingest_fps", ingest_fps);
  bench::AddTailMetrics(&json, rec, "update", tail);
  json.Add(rec, "feature_hit_ratio", hit_ratio);
  json.Add(rec, "stream_results", static_cast<double>(stats.stream_results));
  json.Add(rec, "stream_dropped", static_cast<double>(dropped));
  json.Add(rec, "planner_runs", static_cast<double>(group.planner_runs()));
  json.Add(rec, "final_shards", static_cast<double>(stats.num_shards));
  json.Add(rec, "resizes", static_cast<double>(stats.resizes));
  json.Add(rec, "wall_seconds", total.ElapsedSeconds());
  return json.WriteTo(json_path) ? 0 : 1;
}
