// Table 3: dataset characteristics of the three evaluation dataset
// families (classes, frames, action percentage, instance length moments).

#include "bench/bench_util.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Table 3: dataset characteristics");
  std::printf("%-18s %8s %10s %9s %9s %7s %12s\n", "Dataset", "Classes",
              "Frames(K)", "Action%", "AvgLen", "Std", "(Min,Max)");
  for (auto family :
       {video::DatasetFamily::kBdd100kLike, video::DatasetFamily::kThumos14Like,
        video::DatasetFamily::kActivityNetLike}) {
    auto ds = video::SyntheticDataset::Generate(bench::BenchProfile(family),
                                                17);
    auto s = ds.ComputeStatistics();
    std::printf("%-18s %8d %10.1f %9.2f %9.1f %7.1f   (%d, %d)\n",
                video::DatasetFamilyName(family), s.num_classes,
                s.total_frames / 1000.0, s.percent_action_frames,
                s.avg_action_length, s.stddev_action_length,
                s.min_action_length, s.max_action_length);
  }
  std::printf("\npaper (Table 3): BDD 7.03%% / Thumos 40.27%% / "
              "ActivityNet 56.37%% action frames; lengths 115 / 211 / 909 "
              "(scaled ~2-3x shorter here, see DESIGN.md).\n");
  return 0;
}
