// Figure 12: cross-model inference — the RL agent trained on CrossRight is
// applied unchanged to CrossLeft and LeftTurn queries (swapping in each
// class's APFG), plus the per-resolution frame histogram (Fig. 12b).

#include "bench/bench_util.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Figure 12: cross-model inference (agent from CrossRight)");

  auto ds = video::SyntheticDataset::Generate(
      bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
  auto opts = bench::BenchPlannerOptions();
  core::QueryPlanner planner(&ds, opts);

  // Source plan: agent trained for CrossRight.
  auto source = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.85);
  if (!source.ok()) return 1;
  auto test = planner.SplitVideos(ds.test_indices());

  std::printf("%-14s %8s %8s %12s\n", "query", "F1", "recall", "tput(fps)");
  for (auto cls :
       {video::ActionClass::kCrossRight, video::ActionClass::kCrossLeft,
        video::ActionClass::kLeftTurn}) {
    core::QueryPlan plan;
    if (cls == video::ActionClass::kCrossRight) {
      plan = source.value();
    } else {
      // Train this class's APFG (+profile) but reuse the CrossRight agent.
      auto target_opts = opts;
      target_opts.train_rl = false;
      core::QueryPlanner target_planner(&ds, target_opts);
      auto p = target_planner.PlanForClasses({cls}, 0.85);
      if (!p.ok()) continue;
      plan = p.value();
      plan.agent = source.value().agent;
      // The agent's action indices refer to the source plan's pruned space.
      plan.rl_space = source.value().rl_space;
    }
    core::QueryExecutor executor(&plan);
    auto row = bench::Evaluate(&executor, test, plan.targets);
    std::printf("%-14s %8.3f %8.3f %12.0f\n", video::ActionClassName(cls),
                row.metrics.f1, row.metrics.recall, row.throughput_fps);

    // Fig. 12b: percentage of frames per nominal resolution.
    auto usage = core::ResolutionUsage(plan.rl_space, row.run);
    std::printf("  resolution usage:");
    for (auto [res, pct] : usage) std::printf("  %d: %4.1f%%", res, pct);
    std::printf("\n");
  }
  std::printf("\npaper (Fig. 12): the CrossRight agent transfers to "
              "CrossLeft with ~2.2x speedup over sliding and minimal "
              "accuracy loss; LeftTurn transfers less cleanly.\n");
  return 0;
}
