// Figure 9 + Table 5 through the serving path: accuracy-budgeted serving
// across targets {0.75, 0.80, 0.85}. Where the original bench drove the
// planner and executors directly, every measurement here goes through a
// live EngineGroup — Submit() with per-query budgets (tier, min_accuracy,
// max_latency_budget), one plan per accuracy band, confidence-annotated
// answers (docs/ACCURACY.md).
//
// Segments:
//   1. Bands: a strict query per accuracy band; records the measured F1
//      (`achieved_accuracy`), the cost model's `achieved_confidence`
//      annotation, and throughput per band.
//   2. Budget: a best-effort query capped at half the strict run's modeled
//      GPU seconds; the budget MUST early-exit (the cost model is
//      deterministic) and report reduced confidence.
//   3. Flood: best-effort flood on an undersized group that cannot scale —
//      asserts the degradation ladder end to end: the shed rung fires
//      before admission rejects anything strict (zero kResourceExhausted
//      for the strict tenant), shed answers carry confidence >= the band
//      floor, strict answers stay bit-identical to the unloaded run.
//      Any violation exits non-zero, so bench-smoke is a live gate on the
//      accuracy contract, not just a perf trail.
//
// Flags:
//   --reduced       # CI-sized run: one class, smaller dataset, fewer epochs
//   --json PATH     # machine-readable results (docs/CI.md schema)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stringutil.h"
#include "core/accuracy.h"
#include "engine/engine_group.h"

namespace {

struct BenchConfig {
  bool reduced = false;
  std::string json_path;

  zeus::video::DatasetProfile profile() const {
    auto p = zeus::bench::BenchProfile(zeus::video::DatasetFamily::kBdd100kLike);
    if (reduced) {
      p.num_videos = std::max(12, p.num_videos / 2);
      p.frames_per_video = std::max(250, p.frames_per_video / 2);
    }
    return p;
  }

  zeus::core::QueryPlanner::Options planner() const {
    auto opts = zeus::bench::BenchPlannerOptions();
    if (reduced) {
      opts.apfg.epochs = 6;
      opts.profile.max_windows_per_config = 100;
      opts.trainer.episodes = 6;
    }
    return opts;
  }

  std::vector<zeus::video::ActionClass> classes() const {
    if (reduced) return {zeus::video::ActionClass::kCrossRight};
    return {zeus::video::ActionClass::kCrossRight,
            zeus::video::ActionClass::kLeftTurn};
  }
};

constexpr double kTargets[] = {0.75, 0.80, 0.85};

bool SameAnswer(const zeus::engine::QueryResult& a,
                const zeus::engine::QueryResult& b) {
  return zeus::engine::SameSegments(a, b) && a.metrics.tp == b.metrics.tp &&
         a.metrics.fp == b.metrics.fp && a.metrics.fn == b.metrics.fn &&
         a.metrics.tn == b.metrics.tn;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  BenchConfig cfg;
  cfg.reduced = bench::ReducedFromArgs(argc, argv);
  cfg.json_path = bench::JsonPathFromArgs(argc, argv);
  bench::PrintHeader(common::Format(
      "Figure 9 / Table 5: accuracy-budgeted serving across targets%s",
      cfg.reduced ? " (reduced)" : ""));
  bench::BenchJson json("bench_fig9_accuracy_targets");

  // One shard that cannot grow: the flood segment needs the shed rung to
  // be the only relief the ladder has. The band/budget segments run their
  // queries serially, so the queue never builds and the policy never
  // interferes with them.
  engine::EngineGroup::Options gopts;
  gopts.num_shards = 1;
  gopts.engine.num_workers = 1;
  gopts.engine.max_pending = 16;
  gopts.engine.planner = cfg.planner();
  gopts.autoscale.enabled = true;
  gopts.autoscale.min_shards = 1;
  gopts.autoscale.max_shards = 1;
  gopts.autoscale.max_degrade_level = 1;
  gopts.autoscale.up_queue_per_shard = 4.0;
  gopts.autoscale.down_queue_total = 0.0;
  gopts.autoscale.sustain_samples = 2;
  gopts.autoscale.cooldown_samples = 4;
  gopts.autoscale.sample_interval = std::chrono::milliseconds(10);
  engine::EngineGroup group(gopts);
  {
    auto st = group.RegisterDataset(
        "bdd", video::SyntheticDataset::Generate(cfg.profile(), 17));
    if (!st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // ---- Segment 1: one strict query per accuracy band ----------------------
  // Keyed per band in one plan cache side by side; each band's answer is
  // the reference the budget and flood segments compare against.
  std::printf("\n%-12s %-8s %8s %12s %12s %10s\n", "class", "target", "F1",
              "confidence", "tput(fps)", "plan(s)");
  std::vector<engine::QueryResult> strict_ref;  // indexed [class][band] flat
  for (auto cls : cfg.classes()) {
    for (double target : kTargets) {
      core::ActionQuery q;
      q.action_classes = {cls};
      q.accuracy_target = target;
      auto r = group.Execute("bdd", q);  // defaults: kStrict
      if (!r.ok()) {
        std::fprintf(stderr, "band %.2f failed: %s\n", target,
                     r.status().ToString().c_str());
        return 1;
      }
      std::printf("%-12s %-8.2f %8.3f %12.3f %12.0f %10.1f\n",
                  video::ActionClassName(cls), target, r.value().metrics.f1,
                  r.value().achieved_confidence, r.value().throughput_fps,
                  r.value().plan_seconds);
      const std::string rec = common::Format(
          "%s/band_%.2f", video::ActionClassName(cls), target);
      json.Add(rec, "achieved_accuracy", r.value().metrics.f1);
      json.Add(rec, "achieved_confidence", r.value().achieved_confidence);
      json.Add(rec, "throughput_fps", r.value().throughput_fps);
      json.Add(rec, "wall_seconds", r.value().wall_seconds);
      strict_ref.push_back(r.value());
    }
  }
  const long planner_runs_after_bands = group.planner_runs();
  std::printf("planner runs: %ld (one per band per class)\n",
              planner_runs_after_bands);

  // ---- Segment 2: latency-budgeted query ----------------------------------
  // Half the strict run's modeled GPU seconds: the executor must early-exit
  // (the cost model is deterministic) and the annotation must own up to it.
  const engine::QueryResult& full = strict_ref[1];  // first class, band 0.80
  {
    core::ActionQuery q;
    q.action_classes = {cfg.classes().front()};
    q.accuracy_target = 0.80;
    engine::QueryOptions budgeted;
    budgeted.tier = core::QueryTier::kBestEffort;
    budgeted.max_latency_budget = full.gpu_seconds / 2.0;
    auto r = group.Execute("bdd", q, budgeted);
    if (!r.ok()) {
      std::fprintf(stderr, "budgeted query failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\nbudgeted best-effort at band 0.80, %.2f of %.2f gpu-s: "
        "budget_exhausted=%d confidence %.3f (full run %.3f)\n",
        budgeted.max_latency_budget, full.gpu_seconds,
        r.value().budget_exhausted ? 1 : 0, r.value().achieved_confidence,
        full.achieved_confidence);
    if (!r.value().budget_exhausted ||
        r.value().achieved_confidence >= full.achieved_confidence) {
      std::fprintf(stderr,
                   "FAIL: half-budget run must early-exit with reduced "
                   "confidence\n");
      return 1;
    }
    json.Add("budget/half", "achieved_confidence",
             r.value().achieved_confidence);
    json.Add("budget/half", "budget_exhausted",
             r.value().budget_exhausted ? 1.0 : 0.0);
    json.Add("budget/half", "gpu_seconds", r.value().gpu_seconds);
  }

  // ---- Segment 3: flood — degradation before rejection ---------------------
  // Best-effort flood pressurizes the bounded queue while a strict tenant
  // keeps submitting. The contract under test (docs/ACCURACY.md):
  // shed fires (the group cannot scale), zero strict rejections, shed
  // answers annotated >= band floor, strict answers bit-identical.
  std::printf("\nflood: best-effort at band 0.80 against 1 worker, "
              "max_degrade_level 1\n");
  const core::ActionQuery flood_q = [&] {
    core::ActionQuery q;
    q.action_classes = {cfg.classes().front()};
    q.accuracy_target = 0.80;
    return q;
  }();
  std::atomic<bool> stop_flood{false};
  std::mutex mu;
  std::vector<engine::QueryTicket> best_effort;
  std::thread producer([&] {
    engine::QueryOptions cheap;
    cheap.tier = core::QueryTier::kBestEffort;
    while (!stop_flood.load()) {
      auto t = group.Submit("bdd", flood_q, cheap);
      if (t.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        best_effort.push_back(t.value());
      } else {
        // Back-pressured: the queue is already pinned at max_pending,
        // which is exactly the sustained backlog the ladder needs to see.
        std::this_thread::yield();
      }
    }
  });

  std::vector<engine::QueryTicket> strict;
  long strict_rejected = 0;
  int degrade_peak = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (degrade_peak < 1 && std::chrono::steady_clock::now() < deadline) {
    if (strict.size() < 12) {
      auto t = group.Submit("bdd", flood_q);  // kStrict default
      if (t.ok()) {
        strict.push_back(t.value());
      } else if (t.status().code() ==
                 common::StatusCode::kResourceExhausted) {
        ++strict_rejected;
      }
    }
    degrade_peak = std::max(degrade_peak, group.degrade_level());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop_flood.store(true);
  producer.join();

  long shed = 0, full_band = 0, displaced = 0;
  bool confidence_ok = true, strict_identical = true;
  for (auto& t : best_effort) {
    const auto& r = t.Wait();
    if (!r.ok()) {
      ++displaced;
      continue;
    }
    if (core::SameAccuracyBand(r.value().accuracy_band, 0.75)) {
      ++shed;
      if (r.value().achieved_confidence < core::BandFloor(0.75) - 1e-9) {
        confidence_ok = false;
      }
    } else {
      ++full_band;
    }
  }
  for (auto& t : strict) {
    const auto& r = t.Wait();
    if (!r.ok() || !SameAnswer(r.value(), full)) strict_identical = false;
  }
  const engine::GroupStats stats = group.Stats();
  std::printf(
      "flood result: degrade peak %d, %ld shed / %ld full-band / %ld "
      "displaced best-effort, %zu strict served, %ld strict rejected, "
      "planner runs %ld (unchanged: shed reused the warm 0.75 plan)\n",
      degrade_peak, shed, full_band, displaced, strict.size(),
      strict_rejected, group.planner_runs());

  json.Add("flood", "degrade_peak", static_cast<double>(degrade_peak));
  json.Add("flood", "shed_answers", static_cast<double>(shed));
  json.Add("flood", "displaced_answers", static_cast<double>(displaced));
  json.Add("flood", "strict_served", static_cast<double>(strict.size()));
  json.Add("flood", "strict_rejected", static_cast<double>(strict_rejected));
  json.Add("flood", "band_degraded", static_cast<double>(stats.band_degraded));
  if (!json.WriteTo(cfg.json_path)) return 1;

  // The accuracy contract is a hard gate, not a trail.
  bool ok = true;
  if (degrade_peak < 1) {
    std::fprintf(stderr, "FAIL: flood never triggered the shed rung\n");
    ok = false;
  }
  if (strict_rejected != 0) {
    std::fprintf(stderr, "FAIL: %ld strict submissions rejected (must "
                 "displace best-effort instead)\n", strict_rejected);
    ok = false;
  }
  if (shed < 1) {
    std::fprintf(stderr, "FAIL: no answer was served at the shed band\n");
    ok = false;
  }
  if (!confidence_ok) {
    std::fprintf(stderr, "FAIL: a shed answer reported confidence below "
                 "the band floor\n");
    ok = false;
  }
  if (!strict_identical) {
    std::fprintf(stderr, "FAIL: a strict answer diverged from the "
                 "unloaded run under flood\n");
    ok = false;
  }
  if (group.planner_runs() != planner_runs_after_bands) {
    std::fprintf(stderr, "FAIL: shedding retrained a plan (%ld -> %ld "
                 "planner runs)\n", planner_runs_after_bands,
                 group.planner_runs());
    ok = false;
  }
  if (ok) {
    std::printf("\naccuracy contract held: shed before reject, strict "
                "unaffected, confidence >= band floor.\npaper (Table 5): "
                "speedups 1.45-2.97x, decreasing as the target rises.\n");
  }
  return ok ? 0 : 1;
}
