// Figure 9 + Table 5: Zeus-RL vs Zeus-Sliding across accuracy targets
// {0.75, 0.80, 0.85} on CrossRight and LeftTurn. The APFG and the profiled
// configuration space are shared across targets (they do not depend on the
// target); only the accuracy-aware RL training differs (§4.6).

#include "bench/bench_util.h"
#include "rl/trainer.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader(
      "Figure 9 / Table 5: accuracy-aware planning across targets");

  for (auto cls :
       {video::ActionClass::kCrossRight, video::ActionClass::kLeftTurn}) {
    auto ds = video::SyntheticDataset::Generate(
        bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
    auto opts = bench::BenchPlannerOptions();
    core::QueryPlanner planner(&ds, opts);
    // Base plan (also trains the 0.75-target agent).
    auto plan_r = planner.PlanForClasses({cls}, 0.75);
    if (!plan_r.ok()) continue;
    core::QueryPlan plan = plan_r.value();
    auto train = planner.SplitVideos(ds.train_indices());
    auto test = planner.SplitVideos(ds.test_indices());

    std::printf("\n--- %s ---\n", video::ActionClassName(cls));
    std::printf("%-8s %-14s %8s %8s %12s %9s\n", "target", "method", "F1",
                "recall", "tput(fps)", "speedup");
    for (double target : {0.75, 0.80, 0.85}) {
      // Retrain only the agent for this target, reusing APFG + features.
      common::Rng rng(100 + static_cast<uint64_t>(target * 100));
      rl::VideoEnv env(train, &plan.rl_space, plan.cache.get(), plan.targets,
                       plan.env_opts);
      rl::DqnTrainer::Options trainer_opts = opts.trainer;
      trainer_opts.accuracy_target = target;
      rl::DqnTrainer trainer(&env, trainer_opts, &rng);
      trainer.Train();
      plan.agent = trainer.ReleaseAgent();
      plan.accuracy_target = target;

      int sliding_id = baselines::PickSlidingConfig(plan.space, target);
      baselines::ZeusSliding sliding(plan.space.config(sliding_id),
                                     plan.apfg.get(), plan.cost_model);
      auto srow = bench::Evaluate(&sliding, test, plan.targets);
      core::QueryExecutor executor(&plan);
      auto zrow = bench::Evaluate(&executor, test, plan.targets);
      double speedup = srow.throughput_fps > 0
                           ? zrow.throughput_fps / srow.throughput_fps
                           : 0.0;
      std::printf("%-8.2f %-14s %8.3f %8.3f %12.0f %9s\n", target,
                  "Zeus-Sliding", srow.metrics.f1, srow.metrics.recall,
                  srow.throughput_fps, "-");
      std::printf("%-8.2f %-14s %8.3f %8.3f %12.0f %8.2fx\n", target,
                  "Zeus-RL", zrow.metrics.f1, zrow.metrics.recall,
                  zrow.throughput_fps, speedup);
    }
  }
  std::printf("\npaper (Table 5): speedups 1.45-2.97x, decreasing as the "
              "accuracy target rises.\n");
  return 0;
}
