// Ablation (design-choice study from DESIGN.md): reward composition modes.
// The paper motivates the aggregate accuracy-aware reward (§4.5-4.6) by the
// shortcomings of the purely local reward (§4.4). This bench trains the
// agent under kLocalOnly / kAggregateOnly / kCombined rewards on CrossRight
// and compares accuracy-vs-throughput.

#include "bench/bench_util.h"
#include "rl/trainer.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Ablation: local vs aggregate vs combined rewards");

  auto ds = video::SyntheticDataset::Generate(
      bench::BenchProfile(video::DatasetFamily::kBdd100kLike), 17);
  auto opts = bench::BenchPlannerOptions();
  core::QueryPlanner planner(&ds, opts);
  auto plan_r = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.85);
  if (!plan_r.ok()) return 1;
  core::QueryPlan plan = plan_r.value();
  auto train = planner.SplitVideos(ds.train_indices());
  auto test = planner.SplitVideos(ds.test_indices());

  struct Mode {
    const char* name;
    rl::RewardOptions::Mode mode;
  };
  const Mode modes[] = {
      {"local-only (Eq. 2)", rl::RewardOptions::Mode::kLocalOnly},
      {"aggregate-only (Alg. 2)", rl::RewardOptions::Mode::kAggregateOnly},
      {"combined (Zeus-RL)", rl::RewardOptions::Mode::kCombined},
  };

  std::printf("%-26s %8s %8s %12s %8s %8s\n", "reward mode", "F1", "recall",
              "tput(fps)", "fast%", "slow%");
  for (const Mode& m : modes) {
    common::Rng rng(300 + static_cast<int>(m.mode));
    rl::VideoEnv env(train, &plan.rl_space, plan.cache.get(), plan.targets,
                     plan.env_opts);
    rl::DqnTrainer::Options trainer_opts = opts.trainer;
    trainer_opts.accuracy_target = 0.85;
    trainer_opts.reward.mode = m.mode;
    rl::DqnTrainer trainer(&env, trainer_opts, &rng);
    trainer.Train();
    plan.agent = trainer.ReleaseAgent();

    core::QueryExecutor executor(&plan);
    auto row = bench::Evaluate(&executor, test, plan.targets);
    auto usage = core::SummarizeConfigUsage(plan.rl_space, row.run);
    std::printf("%-26s %8.3f %8.3f %12.0f %7.0f%% %7.0f%%\n", m.name,
                row.metrics.f1, row.metrics.recall, row.throughput_fps,
                usage.fast_pct, usage.slow_pct);
  }
  std::printf("\nexpected: local-only maximizes throughput but overshoots/"
              "undershoots accuracy; aggregate-only lacks the dense speed "
              "signal; combined balances both (the paper's design).\n");
  return 0;
}
