// Figure 8: end-to-end throughput and F1 of all five methods on the six
// evaluation queries (Q1 CrossRight, Q2 LeftTurn, Q3 PoleVault,
// Q4 CleanAndJerk, Q5 IroningClothes, Q6 TennisServe). Accuracy targets:
// 0.85 for BDD-like queries, 0.75 for the others (§6.2).
//
// Modes:
//   bench_fig8_end_to_end               # classic per-method table
//   bench_fig8_end_to_end --clients N   # concurrent-clients mode: N copies
//                                       # of each query submitted to one
//                                       # serving group at once; reports
//                                       # planner runs (want: one per
//                                       # distinct query), wall time and
//                                       # queries/sec.
// Shared flags:
//   --shards N      # concurrent mode: shard datasets across N engines
//                   # (EngineGroup consistent-hash routing; default 1).
//                   # Recorded as `num_shards` in every measurement's JSON
//                   # context, so regress gating never compares runs taken
//                   # at different shard counts.
//   --persist DIR   # concurrent mode: shared plan-persistence dir with
//                   # warm start — plans trained by one run are served
//                   # from cache by the next (the nightly CI trains once,
//                   # then measures serving at --shards 1/2/4)
//   --autoscale     # concurrent mode: enable the queue/latency-driven
//                   # autoscaler (engine/autoscaler.h) — shards start at
//                   # --shards (the nightly leg starts at 1) and the
//                   # policy grows/shrinks the group live. Records the
//                   # final shard count and resize count (informational
//                   # metrics, never gated) and tags the record with
//                   # autoscale=1 context so it is a distinct metric
//                   # identity from the fixed-shard runs.
//   --reduced       # CI-sized run: smaller datasets, fewer queries/epochs
//   --json PATH     # write machine-readable results (docs/CI.md schema)
//
// Concurrent-mode records also carry the engine's self-observation
// snapshot (ZeusDb::Stats()): peak queue depth and p95 queue-wait /
// execution latency, so the serving benches leave a metrics trail, not
// just wall time.

#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "engine/engine_group.h"

namespace {

struct QuerySpec {
  zeus::video::DatasetFamily family;
  zeus::video::ActionClass cls;
  double target;
};

const QuerySpec kQueries[] = {
    {zeus::video::DatasetFamily::kBdd100kLike,
     zeus::video::ActionClass::kCrossRight, 0.85},
    {zeus::video::DatasetFamily::kBdd100kLike,
     zeus::video::ActionClass::kLeftTurn, 0.85},
    {zeus::video::DatasetFamily::kThumos14Like,
     zeus::video::ActionClass::kPoleVault, 0.75},
    {zeus::video::DatasetFamily::kThumos14Like,
     zeus::video::ActionClass::kCleanAndJerk, 0.75},
    {zeus::video::DatasetFamily::kActivityNetLike,
     zeus::video::ActionClass::kIroningClothes, 0.75},
    {zeus::video::DatasetFamily::kActivityNetLike,
     zeus::video::ActionClass::kTennisServe, 0.75},
};

struct BenchConfig {
  int clients = 0;
  int shards = 1;
  bool reduced = false;
  bool autoscale = false;
  std::string json_path;
  std::string persist_dir;

  // Reduced mode trims the workload so the CI bench-smoke job finishes in
  // minutes: 3 queries (one per family), smaller datasets, fewer epochs.
  size_t num_queries() const { return reduced ? 3 : std::size(kQueries); }
  const QuerySpec& query(size_t i) const {
    // In reduced mode take every other query: indices 0, 2, 4 cover the
    // three dataset families.
    return kQueries[reduced ? 2 * i : i];
  }

  zeus::video::DatasetProfile profile(zeus::video::DatasetFamily f) const {
    auto p = zeus::bench::BenchProfile(f);
    if (reduced) {
      p.num_videos = std::max(12, p.num_videos / 2);
      p.frames_per_video = std::max(250, p.frames_per_video / 2);
    }
    return p;
  }

  zeus::core::QueryPlanner::Options planner() const {
    auto opts = zeus::bench::BenchPlannerOptions();
    if (reduced) {
      opts.apfg.epochs = 6;
      opts.profile.max_windows_per_config = 100;
      opts.trainer.episodes = 6;
    }
    return opts;
  }
};

int RunClassic(const BenchConfig& cfg) {
  using namespace zeus;
  bench::PrintHeader(common::Format(
      "Figure 8: end-to-end comparison, %zu queries x 5 methods%s",
      cfg.num_queries(), cfg.reduced ? " (reduced)" : ""));
  bench::BenchJson json("bench_fig8_end_to_end");
  common::WallTimer total;

  double zeus_tput_sum = 0.0, sliding_tput_sum = 0.0;
  int counted = 0;
  for (size_t qi = 0; qi < cfg.num_queries(); ++qi) {
    const QuerySpec& q = cfg.query(qi);
    auto ds = video::SyntheticDataset::Generate(cfg.profile(q.family), 17);
    core::QueryPlanner planner(&ds, cfg.planner());
    auto plan = planner.PlanForClasses({q.cls}, q.target);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed for %s\n",
                   video::ActionClassName(q.cls));
      continue;
    }
    auto train = planner.SplitVideos(ds.train_indices());
    auto test = planner.SplitVideos(ds.test_indices());
    common::Rng rng(7);
    auto rows = bench::RunAllMethods(plan.value(), ds, train, test, &rng);
    std::printf("\n--- %s (%s, target %.2f) ---\n",
                video::ActionClassName(q.cls),
                video::DatasetFamilyName(q.family), q.target);
    bench::PrintRows(rows);
    for (const auto& r : rows) {
      const std::string rec =
          common::Format("%s/%s", video::ActionClassName(q.cls),
                         r.method.c_str());
      json.Add(rec, "f1", r.metrics.f1);
      json.Add(rec, "throughput_fps", r.throughput_fps);
      json.Add(rec, "wall_seconds", r.wall_seconds);
      if (r.method == "Zeus-RL") zeus_tput_sum += r.throughput_fps;
      if (r.method == "Zeus-Sliding") sliding_tput_sum += r.throughput_fps;
    }
    ++counted;
  }
  if (sliding_tput_sum > 0) {
    std::printf("\nmean Zeus-RL speedup over Zeus-Sliding across %d queries:"
                " %.1fx (paper: 3.4x average, max 4.7x)\n",
                counted, zeus_tput_sum / sliding_tput_sum);
    json.Add("summary", "zeus_over_sliding_speedup",
             zeus_tput_sum / sliding_tput_sum);
  }
  json.Add("summary", "total_wall_seconds", total.ElapsedSeconds());
  std::printf("expected shape: Zeus-RL fastest at comparable F1; "
              "Frame-PP and Segment-PP at prohibitively low F1.\n");
  return json.WriteTo(cfg.json_path) ? 0 : 1;
}

int RunConcurrentClients(const BenchConfig& cfg) {
  using namespace zeus;
  bench::PrintHeader(common::Format(
      "Figure 8 extension: %d concurrent clients per query, %d shard(s)%s",
      cfg.clients, cfg.shards, cfg.reduced ? " (reduced)" : ""));
  bench::BenchJson json("bench_fig8_end_to_end");

  engine::EngineGroup::Options gopts;
  gopts.num_shards = cfg.shards;
  gopts.engine.num_workers = cfg.shards > 1 ? 2 : 4;
  gopts.engine.max_pending =
      static_cast<int>(cfg.num_queries()) * cfg.clients + 8;
  gopts.engine.planner = cfg.planner();
  // Shared persistence across runs: a prior run's plans load from disk
  // (warm start), so multi-shard-count sweeps measure serving, not
  // replanning.
  gopts.engine.cache.persist_dir = cfg.persist_dir;
  gopts.engine.cache.warm_start = !cfg.persist_dir.empty();
  if (cfg.autoscale) {
    // Self-operating leg: the policy thread reads Stats() and resizes the
    // group from queue depth / p95 queue wait. Thresholds sized so a
    // multi-client flood on warm plans triggers at least one scale-up.
    gopts.autoscale.enabled = true;
    gopts.autoscale.min_shards = 1;
    gopts.autoscale.max_shards = 4;
    gopts.autoscale.up_queue_per_shard = 4.0;
    gopts.autoscale.sustain_samples = 2;
    gopts.autoscale.cooldown_samples = 4;
    gopts.autoscale.sample_interval = std::chrono::milliseconds(50);
  }
  engine::EngineGroup group(gopts);
  for (auto family : {video::DatasetFamily::kBdd100kLike,
                      video::DatasetFamily::kThumos14Like,
                      video::DatasetFamily::kActivityNetLike}) {
    auto st = group.RegisterDataset(
        video::DatasetFamilyName(family),
        video::SyntheticDataset::Generate(cfg.profile(family), 17));
    if (!st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("dataset %-16s -> shard %d\n", video::DatasetFamilyName(family),
                group.ShardFor(video::DatasetFamilyName(family)));
  }

  // Every client of every query submitted up front: identical-query clients
  // must coalesce onto one planner run (single flight) on the dataset's
  // home shard, distinct queries plan concurrently on the shard pools.
  common::WallTimer wall;
  struct Client {
    const QuerySpec* spec;
    engine::QueryTicket ticket;
  };
  std::vector<Client> inflight;
  for (size_t qi = 0; qi < cfg.num_queries(); ++qi) {
    const QuerySpec& q = cfg.query(qi);
    core::ActionQuery query;
    query.action_classes = {q.cls};
    query.accuracy_target = q.target;
    for (int c = 0; c < cfg.clients; ++c) {
      auto t = group.Submit(video::DatasetFamilyName(q.family), query);
      if (!t.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     t.status().ToString().c_str());
        return 1;
      }
      inflight.push_back({&q, t.value()});
    }
  }
  std::printf("submitted %zu tickets (%zu distinct queries)\n",
              inflight.size(), cfg.num_queries());

  std::printf("%-16s %8s %12s %10s %10s\n", "query", "F1", "tput(fps)",
              "plan(s)", "executor");
  size_t done = 0, failed = 0;
  for (Client& c : inflight) {
    const auto& r = c.ticket.Wait();
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   video::ActionClassName(c.spec->cls),
                   r.status().ToString().c_str());
      ++failed;
      continue;
    }
    ++done;
    // One row per query (its first client); the other clients only count.
    if (r.value().plan_seconds > 0.0 || cfg.clients == 1) {
      std::printf("%-16s %8.3f %12.0f %10.1f %10s\n",
                  video::ActionClassName(c.spec->cls), r.value().metrics.f1,
                  r.value().throughput_fps, r.value().plan_seconds,
                  r.value().executor.c_str());
    }
  }
  const double wall_s = wall.ElapsedSeconds();
  const double qps = wall_s > 0 ? static_cast<double>(done) / wall_s : 0.0;
  std::printf(
      "\n%zu/%zu clients served in %.1f s wall (%.2f queries/sec); planner "
      "runs: %ld (cold target %zu: single-flight coalesces identical "
      "concurrent queries; 0 when a --persist dir is warm)\n",
      done, inflight.size(), wall_s, qps, group.planner_runs(),
      cfg.num_queries());
  const engine::GroupStats stats = group.Stats();
  std::printf(
      "serving stats: peak queue depth %ld, queue wait p50/p95 %.3f/%.3f s, "
      "exec p95 %.3f s, resizes %ld, final shards %d\n",
      stats.peak_queue_depth, stats.queue_wait.p50(), stats.queue_wait.p95(),
      stats.exec.p95(), stats.resizes, stats.num_shards);
  // The shard count is context, not part of the record name: bench_regress
  // folds it into the metric identity, so a --shards 2 run can never be
  // gated against a --shards 1 baseline. An autoscaled run is its own
  // identity too (autoscale=1) — its shard count is whatever the policy
  // chose, so it must never gate against a fixed-shard record.
  const std::string rec = common::Format("concurrent/clients%d", cfg.clients);
  json.AddContext(rec, "num_shards", static_cast<double>(cfg.shards));
  if (cfg.autoscale) json.AddContext(rec, "autoscale", 1.0);
  json.Add(rec, "wall_seconds", wall_s);
  json.Add(rec, "queries_per_sec", qps);
  json.Add(rec, "planner_runs", static_cast<double>(group.planner_runs()));
  json.Add(rec, "clients_served", static_cast<double>(done));
  // Snapshot metrics: a perf trail for the serving layer itself. The
  // depth/percentile/resize numbers are scheduling-noise-sensitive and
  // run-shape-dependent, so bench_regress treats them as informational
  // (never gated) — see tools/bench_regress.py UNGATED.
  json.Add(rec, "peak_queue_depth", static_cast<double>(stats.peak_queue_depth));
  json.Add(rec, "queue_wait_p50_seconds", stats.queue_wait.p50());
  json.Add(rec, "queue_wait_p95_seconds", stats.queue_wait.p95());
  json.Add(rec, "queue_wait_p99_seconds", stats.queue_wait.p99());
  json.Add(rec, "exec_p50_seconds", stats.exec.p50());
  json.Add(rec, "exec_p95_seconds", stats.exec.p95());
  json.Add(rec, "exec_p99_seconds", stats.exec.p99());
  if (cfg.autoscale) {
    json.Add(rec, "final_shards", static_cast<double>(stats.num_shards));
    json.Add(rec, "resizes", static_cast<double>(stats.resizes));
  }
  if (!json.WriteTo(cfg.json_path)) return 1;
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  zeus::common::SetLogLevel(zeus::common::LogLevel::kWarning);
  BenchConfig cfg;
  cfg.reduced = zeus::bench::ReducedFromArgs(argc, argv);
  cfg.json_path = zeus::bench::JsonPathFromArgs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      cfg.clients = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cfg.shards = std::max(1, std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--persist") == 0 && i + 1 < argc) {
      cfg.persist_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--autoscale") == 0) {
      cfg.autoscale = true;
    }
  }
  if (cfg.autoscale && cfg.clients <= 0) {
    // The classic per-method table never builds a serving group, so the
    // flag would be silently meaningless there — refuse rather than let
    // the operator believe they measured an autoscaled run.
    std::fprintf(stderr,
                 "--autoscale requires concurrent mode (--clients N)\n");
    return 1;
  }
  return cfg.clients > 0 ? RunConcurrentClients(cfg) : RunClassic(cfg);
}
