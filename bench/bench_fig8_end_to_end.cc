// Figure 8: end-to-end throughput and F1 of all five methods on the six
// evaluation queries (Q1 CrossRight, Q2 LeftTurn, Q3 PoleVault,
// Q4 CleanAndJerk, Q5 IroningClothes, Q6 TennisServe). Accuracy targets:
// 0.85 for BDD-like queries, 0.75 for the others (§6.2).
//
// Modes:
//   bench_fig8_end_to_end               # classic per-method table
//   bench_fig8_end_to_end --clients N   # concurrent-clients mode: N copies
//                                       # of each query submitted to one
//                                       # QueryEngine at once; reports
//                                       # planner runs (want: one per
//                                       # distinct query) and wall time.

#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "engine/query_engine.h"

namespace {

struct QuerySpec {
  zeus::video::DatasetFamily family;
  zeus::video::ActionClass cls;
  double target;
};

const QuerySpec kQueries[] = {
    {zeus::video::DatasetFamily::kBdd100kLike,
     zeus::video::ActionClass::kCrossRight, 0.85},
    {zeus::video::DatasetFamily::kBdd100kLike,
     zeus::video::ActionClass::kLeftTurn, 0.85},
    {zeus::video::DatasetFamily::kThumos14Like,
     zeus::video::ActionClass::kPoleVault, 0.75},
    {zeus::video::DatasetFamily::kThumos14Like,
     zeus::video::ActionClass::kCleanAndJerk, 0.75},
    {zeus::video::DatasetFamily::kActivityNetLike,
     zeus::video::ActionClass::kIroningClothes, 0.75},
    {zeus::video::DatasetFamily::kActivityNetLike,
     zeus::video::ActionClass::kTennisServe, 0.75},
};

int RunClassic() {
  using namespace zeus;
  bench::PrintHeader("Figure 8: end-to-end comparison, 6 queries x 5 methods");

  double zeus_tput_sum = 0.0, sliding_tput_sum = 0.0;
  int counted = 0;
  for (const QuerySpec& q : kQueries) {
    auto ds =
        video::SyntheticDataset::Generate(bench::BenchProfile(q.family), 17);
    core::QueryPlanner planner(&ds, bench::BenchPlannerOptions());
    auto plan = planner.PlanForClasses({q.cls}, q.target);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed for %s\n",
                   video::ActionClassName(q.cls));
      continue;
    }
    auto train = planner.SplitVideos(ds.train_indices());
    auto test = planner.SplitVideos(ds.test_indices());
    common::Rng rng(7);
    auto rows = bench::RunAllMethods(plan.value(), ds, train, test, &rng);
    std::printf("\n--- %s (%s, target %.2f) ---\n",
                video::ActionClassName(q.cls),
                video::DatasetFamilyName(q.family), q.target);
    bench::PrintRows(rows);
    for (const auto& r : rows) {
      if (r.method == "Zeus-RL") zeus_tput_sum += r.throughput_fps;
      if (r.method == "Zeus-Sliding") sliding_tput_sum += r.throughput_fps;
    }
    ++counted;
  }
  if (sliding_tput_sum > 0) {
    std::printf("\nmean Zeus-RL speedup over Zeus-Sliding across %d queries:"
                " %.1fx (paper: 3.4x average, max 4.7x)\n",
                counted, zeus_tput_sum / sliding_tput_sum);
  }
  std::printf("expected shape: Zeus-RL fastest at comparable F1; "
              "Frame-PP and Segment-PP at prohibitively low F1.\n");
  return 0;
}

int RunConcurrentClients(int clients) {
  using namespace zeus;
  bench::PrintHeader(common::Format(
      "Figure 8 extension: %d concurrent clients per query, one engine",
      clients));

  engine::QueryEngine::Options eopts;
  eopts.num_workers = 4;
  eopts.max_pending = 6 * clients + 8;
  eopts.planner = bench::BenchPlannerOptions();
  engine::QueryEngine engine(eopts);
  for (auto family : {video::DatasetFamily::kBdd100kLike,
                      video::DatasetFamily::kThumos14Like,
                      video::DatasetFamily::kActivityNetLike}) {
    auto st = engine.RegisterDataset(
        video::DatasetFamilyName(family),
        video::SyntheticDataset::Generate(bench::BenchProfile(family), 17));
    if (!st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Every client of every query submitted up front: identical-query clients
  // must coalesce onto one planner run (single flight), distinct queries
  // plan concurrently on the worker pool.
  common::WallTimer wall;
  struct Client {
    const QuerySpec* spec;
    engine::QueryTicket ticket;
  };
  std::vector<Client> inflight;
  for (const QuerySpec& q : kQueries) {
    core::ActionQuery query;
    query.action_classes = {q.cls};
    query.accuracy_target = q.target;
    for (int c = 0; c < clients; ++c) {
      auto t = engine.Submit(video::DatasetFamilyName(q.family), query);
      if (!t.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     t.status().ToString().c_str());
        return 1;
      }
      inflight.push_back({&q, t.value()});
    }
  }
  std::printf("submitted %zu tickets (%zu distinct queries)\n",
              inflight.size(), std::size(kQueries));

  std::printf("%-16s %8s %12s %10s %10s\n", "query", "F1", "tput(fps)",
              "plan(s)", "executor");
  size_t done = 0, failed = 0;
  for (Client& c : inflight) {
    const auto& r = c.ticket.Wait();
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   video::ActionClassName(c.spec->cls),
                   r.status().ToString().c_str());
      ++failed;
      continue;
    }
    ++done;
    // One row per query (its first client); the other clients only count.
    if (r.value().plan_seconds > 0.0 || clients == 1) {
      std::printf("%-16s %8.3f %12.0f %10.1f %10s\n",
                  video::ActionClassName(c.spec->cls), r.value().metrics.f1,
                  r.value().throughput_fps, r.value().plan_seconds,
                  r.value().executor.c_str());
    }
  }
  std::printf(
      "\n%zu/%zu clients served in %.1f s wall; planner runs: %ld "
      "(want %zu: single-flight coalesces identical concurrent queries)\n",
      done, inflight.size(), wall.ElapsedSeconds(),
      engine.plan_cache().planner_runs(), std::size(kQueries));
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  zeus::common::SetLogLevel(zeus::common::LogLevel::kWarning);
  int clients = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[i + 1]);
    }
  }
  return clients > 0 ? RunConcurrentClients(clients) : RunClassic();
}
