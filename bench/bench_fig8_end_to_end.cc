// Figure 8: end-to-end throughput and F1 of all five methods on the six
// evaluation queries (Q1 CrossRight, Q2 LeftTurn, Q3 PoleVault,
// Q4 CleanAndJerk, Q5 IroningClothes, Q6 TennisServe). Accuracy targets:
// 0.85 for BDD-like queries, 0.75 for the others (§6.2).

#include "bench/bench_util.h"

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Figure 8: end-to-end comparison, 6 queries x 5 methods");

  struct QuerySpec {
    video::DatasetFamily family;
    video::ActionClass cls;
    double target;
  };
  const QuerySpec queries[] = {
      {video::DatasetFamily::kBdd100kLike, video::ActionClass::kCrossRight,
       0.85},
      {video::DatasetFamily::kBdd100kLike, video::ActionClass::kLeftTurn,
       0.85},
      {video::DatasetFamily::kThumos14Like, video::ActionClass::kPoleVault,
       0.75},
      {video::DatasetFamily::kThumos14Like, video::ActionClass::kCleanAndJerk,
       0.75},
      {video::DatasetFamily::kActivityNetLike,
       video::ActionClass::kIroningClothes, 0.75},
      {video::DatasetFamily::kActivityNetLike,
       video::ActionClass::kTennisServe, 0.75},
  };

  double zeus_tput_sum = 0.0, sliding_tput_sum = 0.0;
  int counted = 0;
  for (const QuerySpec& q : queries) {
    auto ds =
        video::SyntheticDataset::Generate(bench::BenchProfile(q.family), 17);
    core::QueryPlanner planner(&ds, bench::BenchPlannerOptions());
    auto plan = planner.PlanForClasses({q.cls}, q.target);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed for %s\n",
                   video::ActionClassName(q.cls));
      continue;
    }
    auto train = planner.SplitVideos(ds.train_indices());
    auto test = planner.SplitVideos(ds.test_indices());
    common::Rng rng(7);
    auto rows =
        bench::RunAllMethods(plan.value(), ds, train, test, &rng);
    std::printf("\n--- %s (%s, target %.2f) ---\n",
                video::ActionClassName(q.cls),
                video::DatasetFamilyName(q.family), q.target);
    bench::PrintRows(rows);
    for (const auto& r : rows) {
      if (r.method == "Zeus-RL") zeus_tput_sum += r.throughput_fps;
      if (r.method == "Zeus-Sliding") sliding_tput_sum += r.throughput_fps;
    }
    ++counted;
  }
  if (sliding_tput_sum > 0) {
    std::printf("\nmean Zeus-RL speedup over Zeus-Sliding across %d queries:"
                " %.1fx (paper: 3.4x average, max 4.7x)\n",
                counted, zeus_tput_sum / sliding_tput_sum);
  }
  std::printf("expected shape: Zeus-RL fastest at comparable F1; "
              "Frame-PP and Segment-PP at prohibitively low F1.\n");
  return 0;
}
