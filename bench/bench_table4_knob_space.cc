// Table 4: available knob settings per dataset family and the maximum
// accuracy any configuration reaches for each of the six queries.

#include "bench/bench_util.h"

namespace {

void PrintKnobs(zeus::video::DatasetFamily family) {
  auto space = zeus::core::ConfigurationSpace::ForFamily(family);
  std::printf("%-18s res={", zeus::video::DatasetFamilyName(family));
  for (int r : space.NominalResolutions()) std::printf(" %d", r);
  std::printf(" } len={");
  for (int l : space.NominalLengths()) std::printf(" %d", l);
  std::printf(" } rate={");
  for (int s : space.SamplingRates()) std::printf(" %d", s);
  std::printf(" }  (%zu configs)\n", space.size());
}

}  // namespace

int main() {
  using namespace zeus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader("Table 4: configuration statistics");
  PrintKnobs(video::DatasetFamily::kBdd100kLike);
  PrintKnobs(video::DatasetFamily::kThumos14Like);
  PrintKnobs(video::DatasetFamily::kActivityNetLike);

  struct QuerySpec {
    video::DatasetFamily family;
    video::ActionClass cls;
  };
  const QuerySpec queries[] = {
      {video::DatasetFamily::kBdd100kLike, video::ActionClass::kCrossRight},
      {video::DatasetFamily::kBdd100kLike, video::ActionClass::kLeftTurn},
      {video::DatasetFamily::kThumos14Like, video::ActionClass::kPoleVault},
      {video::DatasetFamily::kThumos14Like, video::ActionClass::kCleanAndJerk},
      {video::DatasetFamily::kActivityNetLike,
       video::ActionClass::kIroningClothes},
      {video::DatasetFamily::kActivityNetLike,
       video::ActionClass::kTennisServe},
  };
  std::printf("\n%-18s %-16s %s\n", "Dataset", "Query", "MaxAccuracy");
  for (const QuerySpec& q : queries) {
    auto ds =
        video::SyntheticDataset::Generate(bench::BenchProfile(q.family), 17);
    auto opts = bench::BenchPlannerOptions(17);
    opts.train_rl = false;
    core::QueryPlanner planner(&ds, opts);
    auto plan = planner.PlanForClasses({q.cls}, 0.75);
    if (!plan.ok()) continue;
    std::printf("%-18s %-16s %10.2f\n", video::DatasetFamilyName(q.family),
                video::ActionClassName(q.cls),
                core::ConfigPlanner::MaxAccuracy(plan.value().space));
  }
  std::printf("\npaper (Table 4): max accuracy 0.91/0.89 (BDD), 0.78/0.76 "
              "(Thumos14), 0.85/0.80 (ActivityNet).\n");
  return 0;
}
