// Ablation bench (extension): DQN variants on the CrossRight query.
// Compares the paper's vanilla DQN against Double DQN, prioritized
// experience replay, and their combination — all trained under identical
// budgets and evaluated with the standard Zeus-RL executor on the test
// split. The paper uses vanilla DQN (§4.3); this bench measures what the
// common DQN stabilizers add at this problem scale.

#include "bench_util.h"
#include "core/executor.h"

namespace zeus {
namespace {

struct Variant {
  const char* name;
  bool double_dqn;
  bool prioritized;
};

int Main() {
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::PrintHeader(
      "Ablation: DQN variants (CrossRight, target 0.85)");

  auto profile = bench::BenchProfile(video::DatasetFamily::kBdd100kLike);
  auto dataset = video::SyntheticDataset::Generate(profile, 17);

  const Variant variants[] = {
      {"DQN (paper)", false, false},
      {"Double DQN", true, false},
      {"DQN + PER", false, true},
      {"Double + PER", true, true},
  };

  std::printf("%-14s %8s %8s %8s %12s %10s %10s\n", "variant", "F1", "prec",
              "recall", "tput(fps)", "td-loss", "train(s)");
  for (const Variant& v : variants) {
    auto opts = bench::BenchPlannerOptions(17);
    // The APFG is identical across variants; a light training budget keeps
    // the four-way replan affordable (the comparison is between agents).
    opts.apfg.epochs = 8;
    opts.profile.max_windows_per_config = 120;
    opts.trainer.agent.double_dqn = v.double_dqn;
    opts.trainer.prioritized_replay = v.prioritized;
    core::QueryPlanner planner(&dataset, opts);
    auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.85);
    if (!plan.ok()) {
      std::printf("%-14s planning failed: %s\n", v.name,
                  plan.status().ToString().c_str());
      continue;
    }
    auto test = planner.SplitVideos(dataset.test_indices());
    core::QueryExecutor executor(&plan.value());
    auto row = bench::Evaluate(&executor, test, plan.value().targets);
    std::printf("%-14s %8.3f %8.3f %8.3f %12.0f %10.4f %10.1f\n", v.name,
                row.metrics.f1, row.metrics.precision, row.metrics.recall,
                row.throughput_fps, plan.value().rl_stats.mean_td_loss,
                plan.value().rl_train_seconds);
  }
  std::printf(
      "\nexpectation: all variants reach a similar operating point; the\n"
      "stabilizers mainly change TD-loss convergence, not end accuracy —\n"
      "the aggregate reward (Alg. 2), not the Q-learning variant, carries\n"
      "the accuracy guarantee.\n");
  return 0;
}

}  // namespace
}  // namespace zeus

int main() { return zeus::Main(); }
