// Quickstart: register a dataset with ZeusDb and run one action query.
//
// This is the 30-second tour of the public API:
//   1. generate (or load) an annotated video dataset,
//   2. register it with the ZeusDb facade,
//   3. execute a SQL-ish action query — planning (APFG fine-tuning,
//      configuration profiling, DQN training) happens on first use,
//   4. read back localized segments, accuracy and throughput.

#include <cstdio>

#include "core/zeusdb.h"
#include "video/dataset.h"

int main() {
  using zeus::video::DatasetFamily;
  using zeus::video::DatasetProfile;
  using zeus::video::SyntheticDataset;

  // A small BDD100K-like driving dataset (see DESIGN.md for how the
  // synthetic substrate stands in for the real corpus).
  DatasetProfile profile = DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 28;          // quick demo; benches use the full profile
  profile.frames_per_video = 400;
  profile.action_fraction = 0.12;   // denser than the family default so the
                                    // demo's small test split holds instances
  SyntheticDataset dataset = SyntheticDataset::Generate(profile, /*seed=*/17);

  zeus::core::ZeusDb db;
  auto st = db.RegisterDataset("bdd", std::move(dataset));
  if (!st.ok()) {
    std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const char* sql =
      "SELECT segment_ids FROM UDF(video) "
      "WHERE action_class = 'cross-right' AND accuracy >= 85%";
  std::printf("executing: %s\n", sql);

  auto result = db.Execute("bdd", sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.value();
  std::printf("\nplanning took %.1f s (APFG + config profiling + DQN)\n",
              r.plan_seconds);
  std::printf("test-split execution: F1=%.3f  precision=%.3f  recall=%.3f\n",
              r.metrics.f1, r.metrics.precision, r.metrics.recall);
  std::printf("throughput: %.0f fps (modeled GPU), wall %.2f s\n",
              r.throughput_fps, r.wall_seconds);
  std::printf("localized %zu segments:\n", r.segments.size());
  for (size_t i = 0; i < r.segments.size() && i < 10; ++i) {
    std::printf("  video %d: [%d, %d)\n", r.segments[i].video_id,
                r.segments[i].start, r.segments[i].end);
  }
  if (r.segments.size() > 10) {
    std::printf("  ... and %zu more\n", r.segments.size() - 10);
  }
  return 0;
}
