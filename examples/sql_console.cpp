// SQL console: run action queries from the command line against a
// registered dataset, including the extended grammar — IN-lists,
// frame-range predicates, LIMIT, and EXPLAIN.
//
//   sql_console                          # runs a scripted demo session
//   sql_console "EXPLAIN SELECT ..."     # runs the given queries in order
//   sql_console --shards 4 [...]         # shard the serving layer: datasets
//                                        # route by consistent hashing to
//                                        # one of 4 engines (EngineGroup)
//   sql_console --router host:port [...] # run the same session against a
//                                        # zeus_router / shardd cluster over
//                                        # TCP (start one with
//                                        # tools/run_cluster.sh)
//   sql_console ".stats"                 # dot-command: print the serving
//                                        # layer's self-observation snapshot
//                                        # (ZeusDb::Stats() as JSON — queue
//                                        # depths, latency percentiles,
//                                        # cache hits, resize counts; in
//                                        # --router mode, the cluster-wide
//                                        # aggregate plus failover counters)
//   sql_console ".append 64"             # dot-command: live-stream ingest —
//                                        # append N frames per test video to
//                                        # the (streamable) dataset
//   sql_console ".subscribe"             # dot-command: attach a standing
//                                        # SubscribeQuery (first call) or
//                                        # poll it for the next incremental
//                                        # answer (later calls) — interleave
//                                        # with .append to watch the trained
//                                        # plan re-execute over the growing
//                                        # stream without replanning
//
// Queries go through the concurrent engine's Submit()/ticket API: the
// console polls the ticket's phase (queued / planning / executing) while it
// waits, which makes the minutes-long first plan visible instead of a
// silent hang. Each query plans on first use and reuses the cached plan
// afterwards, so an EXPLAIN followed by the same SELECT shows the plan once
// — including the executor the factory chose — and then executes without
// re-training.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/remote_shard.h"
#include "core/zeusdb.h"
#include "video/dataset.h"

namespace {

// The standing query the `.subscribe` dot-command attaches — the same query
// the scripted demo session plans, so the subscription reuses its plan.
constexpr char kSubscribeSql[] =
    "SELECT segment_ids FROM UDF(video) "
    "WHERE action_class = 'cross-right' AND accuracy >= 85%";

// Frames appended when `.append` is given without a count: one deterministic
// stream block.
constexpr long kDefaultAppend = zeus::video::SyntheticDataset::kStreamBlockFrames;

// `.append [N]` -> N, anything else -> 0 (not an append command).
long ParseAppend(const std::string& sql) {
  if (sql.rfind(".append", 0) != 0) return 0;
  const long n = std::atol(sql.c_str() + 7);
  return n > 0 ? n : kDefaultAppend;
}

void PrintResult(const zeus::engine::QueryResult& r);

// Console-side subscription state: `.subscribe` attaches on first use and
// polls afterwards, so a scripted session can interleave ingest and reads.
struct ConsoleSub {
  std::optional<zeus::engine::SubscriptionTicket> ticket;
  uint64_t last_seq = 0;
};

void RunQuery(zeus::core::ZeusDb& db, const std::string& sql,
              ConsoleSub* sub) {
  std::printf("\nzeus> %s\n", sql.c_str());
  // Dot-commands are console-side, not SQL. `.stats` prints the engine's
  // self-observation snapshot — the same JSON tooling consumes.
  if (sql == ".stats") {
    std::printf("%s\n", db.Stats().ToJson().c_str());
    return;
  }
  if (const long frames = ParseAppend(sql); frames > 0) {
    auto out = db.group().AppendFrames("bdd", frames);
    if (!out.ok()) {
      std::printf("error: %s\n", out.status().ToString().c_str());
      return;
    }
    std::printf("appended %ld frame(s)/video: stream length %ld, epoch %llu\n",
                out.value().appended, out.value().stream_length,
                static_cast<unsigned long long>(out.value().frame_epoch));
    return;
  }
  if (sql == ".subscribe") {
    if (!sub->ticket.has_value()) {
      auto t = db.group().Subscribe("bdd", kSubscribeSql, {});
      if (!t.ok()) {
        std::printf("error: %s\n", t.status().ToString().c_str());
        return;
      }
      sub->ticket = t.value();
      std::printf("subscribed (id %llu); each .append re-executes the cached "
                  "plan over the new window\n",
                  static_cast<unsigned long long>(t.value().id()));
    }
    auto update = sub->ticket->Next(sub->last_seq, /*timeout_ms=*/120000);
    if (!update.ok()) {
      std::printf("error: %s\n", update.status().ToString().c_str());
      return;
    }
    sub->last_seq = update.value().seq;
    std::printf("update #%llu (window [%lld, %lld), epoch %llu)\n",
                static_cast<unsigned long long>(update.value().seq),
                static_cast<long long>(update.value().result.window_begin),
                static_cast<long long>(update.value().result.window_end),
                static_cast<unsigned long long>(
                    update.value().result.frame_epoch));
    PrintResult(update.value().result);
    return;
  }
  auto ticket = db.Submit("bdd", sql);
  if (!ticket.ok()) {
    std::printf("error: %s\n", ticket.status().ToString().c_str());
    return;
  }
  // Poll the ticket, narrating phase changes while the engine works.
  zeus::engine::QueryState last = zeus::engine::QueryState::kQueued;
  while (!ticket.value().done()) {
    zeus::engine::QueryState state = ticket.value().state();
    if (state != last) {
      std::printf("  [%s]\n", zeus::engine::QueryStateName(state));
      last = state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const auto& result = ticket.value().Wait();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  PrintResult(result.value());
}

void PrintResult(const zeus::engine::QueryResult& r) {
  if (!r.explanation.empty()) {
    std::printf("%s\n", r.explanation.c_str());
    return;
  }
  if (r.plan_seconds > 0) {
    std::printf("(planned in %.1f s)\n", r.plan_seconds);
  }
  std::printf("%zu segment(s), F1=%.3f, %.0f fps  [executor: %s]\n",
              r.segments.size(), r.metrics.f1, r.throughput_fps,
              r.executor.c_str());
  // Accuracy annotation (docs/ACCURACY.md): which band the answer was
  // served at under which tier, and the cost model's confidence estimate.
  std::printf("  [%s tier, band %.2f, confidence %.3f%s]\n",
              zeus::core::TierName(r.tier), r.accuracy_band,
              r.achieved_confidence,
              r.budget_exhausted ? ", budget exhausted" : "");
  // The certain-answer contract: a degraded answer is still correct for
  // the data the serving replica holds, but the replica group is mid
  // catch-up — say so instead of silently presenting it as final.
  if (r.consistency == zeus::engine::Consistency::kDegraded) {
    std::printf("  [degraded: %s]\n", r.divergence.c_str());
  }
  for (const auto& seg : r.segments) {
    std::printf("  video %-4d [%5d, %5d)\n", seg.video_id, seg.start, seg.end);
  }
}

// Router-side subscription cursor: the router assigns the id (sub_id 0 on
// the wire) and serves a monotone client-facing seq that survives shard
// failover — the console only keeps the cursor.
struct RemoteSub {
  uint64_t sub_id = 0;
  uint64_t last_seq = 0;
};

// Same session against a cluster: the console becomes a network client and
// every query crosses the wire to whichever shard is the dataset's home.
void RunRemoteQuery(zeus::cluster::RemoteShard& client,
                    const std::string& sql, RemoteSub* sub) {
  std::printf("\nzeus> %s\n", sql.c_str());
  if (const long frames = ParseAppend(sql); frames > 0) {
    zeus::cluster::AppendFramesRequest req;
    req.name = "bdd";
    req.relative_frames = static_cast<uint64_t>(frames);
    auto out = client.AppendFrames(req);
    if (!out.ok()) {
      std::printf("error: %s\n", out.status().ToString().c_str());
      return;
    }
    std::printf("appended %lld frame(s)/video: stream length %llu, epoch "
                "%llu (fanned to every replica)\n",
                static_cast<long long>(out.value().appended),
                static_cast<unsigned long long>(out.value().stream_length),
                static_cast<unsigned long long>(out.value().frame_epoch));
    return;
  }
  if (sql == ".subscribe") {
    if (sub->sub_id == 0) {
      zeus::cluster::SubscribeRequest req;
      req.dataset = "bdd";
      req.sql = kSubscribeSql;
      req.sub_id = 0;  // router-assigned
      auto reply = client.Subscribe(req);
      if (!reply.ok()) {
        std::printf("error: %s\n", reply.status().ToString().c_str());
        return;
      }
      sub->sub_id = reply.value().sub_id;
      std::printf("subscribed (routed id %llu); the router re-attaches this "
                  "subscription on shard failover\n",
                  static_cast<unsigned long long>(sub->sub_id));
    }
    zeus::cluster::StreamPollRequest req;
    req.sub_id = sub->sub_id;
    req.after_seq = sub->last_seq;
    req.timeout_ms = 120000;
    auto update = client.StreamPoll(req, /*deadline_ms=*/150000);
    if (!update.ok()) {
      std::printf("error: %s\n", update.status().ToString().c_str());
      return;
    }
    sub->last_seq = update.value().seq;
    std::printf("update #%llu (window [%lld, %lld), epoch %llu%s)\n",
                static_cast<unsigned long long>(update.value().seq),
                static_cast<long long>(update.value().result.window_begin),
                static_cast<long long>(update.value().result.window_end),
                static_cast<unsigned long long>(
                    update.value().result.frame_epoch),
                update.value().dropped > 0 ? ", conflated" : "");
    PrintResult(update.value().result);
    return;
  }
  if (sql == ".stats") {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return;
    }
    const auto& s = stats.value();
    std::printf("cluster: %d shard(s) alive, %lld failover(s), %lld dataset(s)"
                " re-homed\n",
                s.num_shards, static_cast<long long>(s.failovers),
                static_cast<long long>(s.rehomed_datasets));
    std::printf("replication: factor %d, %lld replica(s) behind, %lld read "
                "failover(s), %lld plan resync(s)\n",
                s.replication, static_cast<long long>(s.replicas_behind),
                static_cast<long long>(s.read_failovers),
                static_cast<long long>(s.plan_resyncs));
    std::printf("answers: %lld certain, %lld degraded\n",
                static_cast<long long>(s.certain_answers),
                static_cast<long long>(s.degraded_answers));
    std::printf("accuracy: degrade_level=%d band_degraded=%ld "
                "mean_confidence=%.3f\n",
                s.stats.degrade_level, s.stats.band_degraded,
                s.stats.confidence.mean());
    std::printf("queries: completed=%ld failed=%ld cancelled=%ld "
                "planner_runs=%ld cache_hits=%ld disk_loads=%ld\n",
                s.stats.completed, s.stats.failed, s.stats.cancelled,
                s.stats.planner_runs, s.stats.cache_hits, s.stats.disk_loads);
    return;
  }
  zeus::cluster::ExecRequest req;
  req.dataset = "bdd";
  req.sql = sql;
  auto ticket = client.Submit(req);
  if (!ticket.ok()) {
    std::printf("error: %s\n", ticket.status().ToString().c_str());
    return;
  }
  // Poll the remote ticket just like the local path polls QueryTicket.
  zeus::engine::QueryState last = zeus::engine::QueryState::kQueued;
  for (;;) {
    auto state = ticket.value().State();
    if (!state.ok()) break;  // terminal or shard lost; Wait() tells us which
    if (state.value().state != last) {
      std::printf("  [%s]\n", zeus::engine::QueryStateName(state.value().state));
      last = state.value().state;
    }
    if (last == zeus::engine::QueryState::kDone ||
        last == zeus::engine::QueryState::kFailed ||
        last == zeus::engine::QueryState::kCancelled) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  auto result = ticket.value().Wait();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  PrintResult(result.value());
}

}  // namespace

int main(int argc, char** argv) {
  using zeus::video::DatasetFamily;
  using zeus::video::DatasetProfile;
  using zeus::video::SyntheticDataset;

  int shards = 1;
  std::string router;
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--router") == 0 && i + 1 < argc) {
      router = argv[++i];
    } else {
      queries.emplace_back(argv[i]);
    }
  }
  if (queries.empty()) {
    queries = {
        // Plan inspection first: shows the profiled configuration frontier,
        // the trained agent, and the executor the factory picked — without
        // running the query.
        "EXPLAIN SELECT segment_ids FROM UDF(video) "
        "WHERE action_class = 'cross-right' AND accuracy >= 85%",
        // Same query executed — the plan is already cached.
        "SELECT segment_ids FROM UDF(video) "
        "WHERE action_class = 'cross-right' AND accuracy >= 85%",
        // Restrict to early frames and cap the result count.
        "SELECT segment_ids FROM UDF(video) "
        "WHERE action_class = 'cross-right' AND accuracy >= 85% "
        "AND frame BETWEEN 0 AND 250 LIMIT 3",
        // Multi-class query (§6.5): either crossing direction counts.
        "SELECT segment_ids FROM UDF(video) WHERE action_class IN "
        "('cross-right', 'cross-left') AND accuracy >= 80%",
        // Live-stream finale: attach a standing SubscribeQuery (reuses the
        // plan trained above), ingest one stream block, and read the
        // incremental answer the append triggered — no replanning.
        ".subscribe",
        ".append 64",
        ".subscribe",
        // What the session did to the engine: queue waits, execution
        // latency percentiles, cache hits — the ops view of the demo.
        ".stats",
    };
  }

  if (!router.empty()) {
    // Cluster mode: the dataset travels as a recipe (the shards generate it
    // deterministically from the spec), queries travel as frames.
    zeus::cluster::RemoteShard::Options copts;
    const size_t colon = router.rfind(':');
    if (colon != std::string::npos) {
      copts.host = router.substr(0, colon);
      copts.port = std::atoi(router.c_str() + colon + 1);
    } else {
      copts.port = std::atoi(router.c_str());
    }
    copts.name = "console";
    zeus::cluster::RemoteShard client(copts);
    zeus::cluster::DatasetSpec spec;
    spec.name = "bdd";
    spec.num_videos = 28;
    spec.frames_per_video = 400;
    auto reg = client.RegisterDataset(spec);
    if (!reg.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   reg.status().ToString().c_str());
      return 1;
    }
    std::printf("connected to %s; dataset 'bdd' registered (%llu plan(s) "
                "warmed)\n",
                router.c_str(),
                static_cast<unsigned long long>(reg.value()));
    RemoteSub rsub;
    for (const std::string& sql : queries) RunRemoteQuery(client, sql, &rsub);
    return 0;
  }

  DatasetProfile profile =
      DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 28;
  profile.frames_per_video = 400;
  profile.action_fraction = 0.12;
  zeus::core::ZeusDb::Options options;
  options.num_shards = shards;
  zeus::core::ZeusDb db(options);
  auto st = db.RegisterDataset(
      "bdd", SyntheticDataset::Generate(profile, /*seed=*/17));
  if (!st.ok()) {
    std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (shards > 1) {
    std::printf("serving with %d shards; dataset 'bdd' routed to shard %d\n",
                shards, db.group().ShardFor("bdd"));
  }

  ConsoleSub sub;
  for (const std::string& sql : queries) RunQuery(db, sql, &sub);
  return 0;
}
