// Batch inference: serving one query over a multi-camera corpus with the
// inter-video batched executor (the §6.4 extension).
//
// A traffic-analytics deployment watches many cameras; per-video RL
// execution cannot batch (each decision feeds the next input), but across
// cameras the traversals are independent. This example plans one
// CrossRight query and then compares sequential vs batched execution over
// the corpus, printing the modeled GPU time at several batch widths.

#include <cstdio>

#include "core/batched_executor.h"
#include "core/executor.h"
#include "core/query_planner.h"
#include "video/dataset.h"

int main() {
  using zeus::video::ActionClass;
  using zeus::video::DatasetFamily;
  using zeus::video::DatasetProfile;
  using zeus::video::SyntheticDataset;

  DatasetProfile profile =
      DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 28;
  profile.frames_per_video = 400;
  profile.action_fraction = 0.12;
  auto dataset = SyntheticDataset::Generate(profile, 17);

  zeus::core::QueryPlanner::Options opts;
  opts.apfg.epochs = 12;
  opts.profile.max_windows_per_config = 200;
  opts.trainer.episodes = 10;
  zeus::core::QueryPlanner planner(&dataset, opts);
  auto plan = planner.PlanForClasses({ActionClass::kCrossRight}, 0.85);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // The "camera corpus": every video in the dataset.
  std::vector<const zeus::video::Video*> corpus;
  for (size_t i = 0; i < dataset.num_videos(); ++i) {
    corpus.push_back(&dataset.video(i));
  }
  std::printf("corpus: %zu cameras x %d frames\n", corpus.size(),
              profile.frames_per_video);

  zeus::core::QueryExecutor sequential(&plan.value());
  auto base = sequential.Localize(corpus);
  std::printf("%-12s gpu=%.3fs tput=%.0f fps\n", "sequential",
              base.gpu_seconds, base.ThroughputFps());

  for (int width : {4, 16}) {
    zeus::core::BatchedExecutor::Options bopts;
    bopts.max_batch = width;
    zeus::core::BatchedExecutor batched(&plan.value(), bopts);
    auto run = batched.Localize(corpus);
    bool same = run.masks == base.masks;
    std::printf("%-12s gpu=%.3fs tput=%.0f fps  speedup=%.2fx  results %s\n",
                ("batch=" + std::to_string(width)).c_str(), run.gpu_seconds,
                run.ThroughputFps(), base.gpu_seconds / run.gpu_seconds,
                same ? "identical" : "DIFFER (bug!)");
  }
  std::printf(
      "\nBatching changes only the cost accounting: the RL agent's\n"
      "decisions — and therefore the localized segments — are identical.\n");
  return 0;
}
