// Batch inference: serving one query over a multi-camera corpus with the
// inter-video batched executor (the §6.4 extension), through the
// concurrent query engine.
//
// A traffic-analytics deployment watches many cameras; per-video RL
// execution cannot batch (each decision feeds the next input), but across
// cameras the traversals are independent. This example:
//   1. plans one CrossRight query (the engine's PlanCache trains it once),
//   2. compares the sequential executor against the batched executor at
//      several widths via per-query ExecutionOptions overrides,
//   3. fires a burst of concurrent clients at the engine to show that the
//      shared plan cache and worker pool serve them from one plan.

#include <cstdio>
#include <vector>

#include "engine/query_engine.h"
#include "video/dataset.h"

int main() {
  using zeus::video::ActionClass;
  using zeus::video::DatasetFamily;
  using zeus::video::DatasetProfile;
  using zeus::video::SyntheticDataset;

  DatasetProfile profile =
      DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 28;
  profile.frames_per_video = 400;
  profile.action_fraction = 0.12;

  zeus::engine::QueryEngine::Options eopts;
  eopts.num_workers = 4;
  eopts.planner.apfg.epochs = 12;
  eopts.planner.profile.max_windows_per_config = 200;
  eopts.planner.trainer.episodes = 10;
  zeus::engine::QueryEngine engine(eopts);
  auto st = engine.RegisterDataset(
      "cameras", SyntheticDataset::Generate(profile, 17));
  if (!st.ok()) {
    std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
    return 1;
  }

  zeus::core::ActionQuery query;
  query.action_classes = {ActionClass::kCrossRight};
  query.accuracy_target = 0.85;

  // Sequential reference run (plans on first use).
  zeus::engine::ExecutionOptions seq;
  seq.executor = zeus::engine::ExecutorKind::kSequential;
  auto base = engine.Execute("cameras", query, seq);
  if (!base.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("planned in %.1f s; corpus test split served by %s\n",
              base.value().plan_seconds, base.value().executor.c_str());
  std::printf("%-12s gpu=%.3fs tput=%.0f fps\n", "sequential",
              base.value().gpu_seconds, base.value().throughput_fps);

  // Batched execution at several widths — identical results, cheaper cost
  // accounting (same-configuration invocations share a launch).
  for (int width : {4, 16}) {
    zeus::engine::ExecutionOptions batched;
    batched.executor = zeus::engine::ExecutorKind::kBatched;
    batched.max_batch = width;
    auto run = engine.Execute("cameras", query, batched);
    if (!run.ok()) return 1;
    bool same = zeus::engine::SameSegments(run.value(), base.value()) &&
                run.value().metrics.tp == base.value().metrics.tp &&
                run.value().metrics.fp == base.value().metrics.fp;
    std::printf("%-12s gpu=%.3fs tput=%.0f fps  speedup=%.2fx  results %s\n",
                ("batch=" + std::to_string(width)).c_str(),
                run.value().gpu_seconds, run.value().throughput_fps,
                base.value().gpu_seconds / run.value().gpu_seconds,
                same ? "identical" : "DIFFER (bug!)");
  }

  // A burst of concurrent clients: every ticket is served from the one
  // cached plan (plan_seconds == 0 for all of them).
  std::vector<zeus::engine::QueryTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    auto t = engine.Submit("cameras", query);
    if (t.ok()) tickets.push_back(t.value());
  }
  int replans = 0;
  for (auto& t : tickets) {
    const auto& r = t.Wait();
    if (r.ok() && r.value().plan_seconds > 0) ++replans;
  }
  std::printf("\n%zu concurrent clients served, %d replans (want 0), "
              "planner runs total: %ld\n",
              tickets.size(), replans, engine.plan_cache().planner_runs());
  std::printf(
      "Batching changes only the cost accounting: the RL agent's\n"
      "decisions — and therefore the localized segments — are identical.\n");
  return 0;
}
