// Domain transfer: train a LeftTurn plan on one city's footage (BDD-like)
// and run it on footage from a different city (Cityscapes-like), the §6.6
// deployment scenario — a fleet operator reusing one trained plan across
// camera domains without retraining.

#include <cstdio>

#include "core/executor.h"
#include "core/query_planner.h"
#include "video/dataset.h"

int main() {
  using namespace zeus;

  auto source_profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
  source_profile.num_videos = 32;
  auto source = video::SyntheticDataset::Generate(source_profile, 31);

  auto target_profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kCityscapesLike);
  target_profile.num_videos = 12;
  auto target = video::SyntheticDataset::Generate(target_profile, 32);

  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 10;
  opts.trainer.episodes = 8;
  core::QueryPlanner planner(&source, opts);
  std::printf("training LeftTurn@0.85 on %s...\n",
              source.profile().name.c_str());
  auto plan = planner.PlanForClasses({video::ActionClass::kLeftTurn}, 0.85);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  core::QueryExecutor executor(&plan.value());

  // In-domain reference.
  auto in_domain = planner.SplitVideos(source.test_indices());
  auto run_a = executor.Localize(in_domain);
  auto m_a = core::EvaluateVideos(in_domain, plan.value().targets,
                                  run_a.masks, {});

  // Cross-domain deployment.
  std::vector<const video::Video*> cross;
  for (size_t i = 0; i < target.num_videos(); ++i) {
    cross.push_back(&target.video(i));
  }
  auto run_b = executor.Localize(cross);
  auto m_b = core::EvaluateVideos(cross, plan.value().targets, run_b.masks,
                                  {});

  std::printf("\n%-26s %8s %8s %12s\n", "evaluation", "F1", "recall",
              "tput(fps)");
  std::printf("%-26s %8.3f %8.3f %12.0f\n", "in-domain (BDD-like)", m_a.f1,
              m_a.recall, run_a.ThroughputFps());
  std::printf("%-26s %8.3f %8.3f %12.0f\n", "cross-domain (Cityscapes)",
              m_b.f1, m_b.recall, run_b.ThroughputFps());
  std::printf("\nexpect a modest accuracy drop under domain shift (the paper "
              "measures ~2.5%%) while the throughput advantage persists.\n");
  return 0;
}
