// Traffic analytics: the paper's motivating scenario (§1) — a traffic
// analyst studying movement patterns at an intersection. Runs two queries
// against the same dash-cam corpus (pedestrian crossings and left turns) and
// shows how ZeusDb caches one plan per (query, target) while sharing the
// registered dataset.

#include <cstdio>

#include "core/zeusdb.h"
#include "video/dataset.h"

int main() {
  using zeus::video::DatasetFamily;
  using zeus::video::DatasetProfile;
  using zeus::video::SyntheticDataset;

  DatasetProfile profile =
      DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 32;
  profile.frames_per_video = 400;
  SyntheticDataset corpus = SyntheticDataset::Generate(profile, 7);
  std::printf("registered %d dash-cam clips (%d frames each)\n",
              profile.num_videos, profile.frames_per_video);

  zeus::core::ZeusDb db;
  if (!db.RegisterDataset("intersection_cam", std::move(corpus)).ok()) {
    return 1;
  }

  const char* queries[] = {
      "SELECT segment_ids FROM UDF(video) "
      "WHERE action_class = 'cross-right' AND accuracy >= 80%",
      "SELECT segment_ids FROM UDF(video) "
      "WHERE action_class = 'left-turn' AND accuracy >= 80%",
  };
  for (const char* sql : queries) {
    std::printf("\n> %s\n", sql);
    auto result = db.Execute("intersection_cam", sql);
    if (!result.ok()) {
      std::fprintf(stderr, "  failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    const auto& r = result.value();
    std::printf("  planned in %.1f s, executed at %.0f fps (modeled GPU)\n",
                r.plan_seconds, r.throughput_fps);
    std::printf("  F1 %.3f (precision %.3f, recall %.3f), %zu segments\n",
                r.metrics.f1, r.metrics.precision, r.metrics.recall,
                r.segments.size());
    for (size_t i = 0; i < r.segments.size() && i < 5; ++i) {
      double start_s = r.segments[i].start / 30.0;  // 30 fps footage
      double end_s = r.segments[i].end / 30.0;
      std::printf("    clip %d: %.1fs - %.1fs\n", r.segments[i].video_id,
                  start_s, end_s);
    }
  }

  // Re-issuing a query reuses the cached plan (plan_seconds == 0).
  auto again = db.Execute("intersection_cam", queries[0]);
  if (again.ok()) {
    std::printf("\nre-issued query #1: plan reused (planning %.1f s), "
                "throughput %.0f fps\n",
                again.value().plan_seconds, again.value().throughput_fps);
  }
  return 0;
}
