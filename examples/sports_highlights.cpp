// Sports highlight extraction: localizes PoleVault attempts in long,
// untrimmed Thumos14-like sports footage using the lower-level planner /
// executor API (instead of the ZeusDb facade), and compares the RL plan
// against the static sliding-window baseline — the trade-off a production
// user would inspect before deploying a plan.

#include <cstdio>

#include "baselines/sliding.h"
#include "core/executor.h"
#include "core/query_planner.h"
#include "video/dataset.h"

int main() {
  using namespace zeus;

  auto profile =
      video::DatasetProfile::ForFamily(video::DatasetFamily::kThumos14Like);
  profile.num_videos = 12;
  profile.frames_per_video = 480;
  auto meet_footage = video::SyntheticDataset::Generate(profile, 21);

  core::QueryPlanner::Options opts;
  opts.apfg.epochs = 10;
  opts.trainer.episodes = 8;
  core::QueryPlanner planner(&meet_footage, opts);

  std::printf("planning PoleVault@0.75 over %zu videos...\n",
              meet_footage.num_videos());
  auto plan = planner.PlanForClasses({video::ActionClass::kPoleVault}, 0.75);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("  APFG train accuracy %.2f, %ld RL steps, "
              "%zu-config frontier\n",
              plan.value().apfg_stats.train_accuracy,
              plan.value().rl_stats.steps, plan.value().rl_space.size());

  auto test = planner.SplitVideos(meet_footage.test_indices());

  // Zeus-RL executor.
  core::QueryExecutor executor(&plan.value());
  auto zeus_run = executor.Localize(test);
  auto zeus_metrics = core::EvaluateVideos(test, plan.value().targets,
                                           zeus_run.masks, {});

  // Static sliding baseline at the fastest target-meeting configuration.
  int config_id = baselines::PickSlidingConfig(plan.value().space, 0.75);
  baselines::ZeusSliding sliding(plan.value().space.config(config_id),
                                 plan.value().apfg.get(),
                                 plan.value().cost_model);
  auto sliding_run = sliding.Localize(test);
  auto sliding_metrics = core::EvaluateVideos(test, plan.value().targets,
                                              sliding_run.masks, {});

  std::printf("\n%-14s %8s %12s %14s\n", "method", "F1", "tput(fps)",
              "invocations");
  std::printf("%-14s %8.3f %12.0f %14ld\n", "Zeus-RL", zeus_metrics.f1,
              zeus_run.ThroughputFps(), zeus_run.invocations);
  std::printf("%-14s %8.3f %12.0f %14ld\n", "Zeus-Sliding",
              sliding_metrics.f1, sliding_run.ThroughputFps(),
              sliding_run.invocations);

  // The highlight reel: localized segments from the RL plan.
  std::printf("\nhighlights:\n");
  int shown = 0;
  for (size_t vi = 0; vi < test.size() && shown < 8; ++vi) {
    for (const auto& seg : core::MaskToInstances(zeus_run.masks[vi])) {
      std::printf("  video %d: frames [%d, %d)\n", test[vi]->id(), seg.start,
                  seg.end);
      if (++shown >= 8) break;
    }
  }
  return 0;
}
