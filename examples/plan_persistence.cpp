// Plan persistence: the train-once / deploy-many workflow.
//
// A Zeus deployment trains a plan (APFG fine-tune + configuration
// profiling + DQN) once per (dataset, query, accuracy target) and then
// serves queries from the checkpoint. This example walks the full storage
// path:
//   1. generate a dataset and persist it to a VideoStore corpus directory,
//   2. plan a query and checkpoint the plan with PlanIo,
//   3. register both in the Catalog,
//   4. simulate a fresh process: reload dataset + plan from the catalog
//      and execute without any re-training.

#include <cstdio>
#include <filesystem>

#include "core/executor.h"
#include "core/plan_io.h"
#include "core/query_planner.h"
#include "storage/catalog.h"
#include "storage/video_store.h"
#include "video/dataset.h"

int main() {
  namespace fs = std::filesystem;
  using zeus::video::ActionClass;
  using zeus::video::DatasetFamily;
  using zeus::video::DatasetProfile;
  using zeus::video::SyntheticDataset;

  const std::string root = fs::temp_directory_path() / "zeus_deployment";
  fs::remove_all(root);

  // --- Train-time process -------------------------------------------------
  DatasetProfile profile =
      DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 28;
  profile.frames_per_video = 400;
  profile.action_fraction = 0.12;  // denser: keeps the demo's test split
                                   // populated with action instances
  auto dataset = SyntheticDataset::Generate(profile, 17);

  auto catalog = zeus::storage::Catalog::Open(root);
  if (!catalog.ok()) return 1;
  std::printf("catalog at %s\n", root.c_str());

  auto st = zeus::storage::SaveDataset(root + "/bdd_corpus", dataset);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  (void)catalog.value().AddDataset("bdd", "bdd_corpus");
  std::printf("persisted %zu videos to bdd_corpus/\n", dataset.num_videos());

  zeus::core::QueryPlanner::Options opts;
  opts.apfg.epochs = 12;
  opts.profile.max_windows_per_config = 200;
  opts.trainer.episodes = 10;
  zeus::core::QueryPlanner planner(&dataset, opts);
  auto plan = planner.PlanForClasses({ActionClass::kCrossRight}, 0.85);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan trained (APFG %.1fs, profile %.1fs, RL %.1fs)\n",
              plan.value().apfg_train_seconds, plan.value().profile_seconds,
              plan.value().rl_train_seconds);

  // Execute once pre-checkpoint so the restart can prove bit-identity.
  std::vector<const zeus::video::Video*> pre_test;
  for (int i : dataset.test_indices()) {
    pre_test.push_back(&dataset.video(static_cast<size_t>(i)));
  }
  zeus::core::QueryExecutor pre_exec(&plan.value());
  auto pre_run = pre_exec.Localize(pre_test);
  auto pre_metrics = zeus::core::EvaluateVideos(
      pre_test, plan.value().targets, pre_run.masks, zeus::core::EvalOptions{});
  std::printf("pre-checkpoint execution: F1=%.3f, %ld invocations\n",
              pre_metrics.f1, pre_run.invocations);

  st = zeus::core::PlanIo::Save(root + "/plan_crossright_85",
                                plan.value());
  if (!st.ok()) {
    std::fprintf(stderr, "plan save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  (void)catalog.value().AddPlan(
      {"bdd", "CrossRight", 0.85, "plan_crossright_85"});
  std::printf("checkpointed plan and registered it in the catalog\n");

  // --- Serving-time process (fresh state, no training) --------------------
  std::printf("\n--- simulated restart: serving from the catalog ---\n");
  auto catalog2 = zeus::storage::Catalog::Open(root);
  if (!catalog2.ok()) return 1;
  auto dir = catalog2.value().DatasetDir("bdd");
  auto entry = catalog2.value().FindPlan("bdd", "CrossRight", 0.85);
  if (!dir.ok() || !entry.has_value()) {
    std::fprintf(stderr, "catalog lookup failed\n");
    return 1;
  }
  auto reloaded = zeus::storage::LoadDataset(dir.value());
  if (!reloaded.ok()) return 1;
  auto plan2 = zeus::core::PlanIo::Load(root + "/" + entry->prefix,
                                        DatasetFamily::kBdd100kLike, opts);
  if (!plan2.ok()) {
    std::fprintf(stderr, "plan load failed: %s\n",
                 plan2.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset (%zu videos) and plan reloaded, executing...\n",
              reloaded.value().num_videos());

  std::vector<const zeus::video::Video*> test;
  for (int i : reloaded.value().test_indices()) {
    test.push_back(&reloaded.value().video(static_cast<size_t>(i)));
  }
  zeus::core::QueryExecutor executor(&plan2.value());
  auto run = executor.Localize(test);
  auto metrics = zeus::core::EvaluateVideos(
      test, plan2.value().targets, run.masks, zeus::core::EvalOptions{});
  std::printf("post-restart execution:   F1=%.3f, %ld invocations\n",
              metrics.f1, run.invocations);
  bool identical = run.masks == pre_run.masks;
  std::printf("checkpoint round-trip is %s — no re-training needed.\n",
              identical ? "bit-identical" : "NOT identical (bug!)");
  return identical ? 0 : 1;
}
