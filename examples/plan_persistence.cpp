// Plan persistence: the train-once / deploy-many workflow, now through the
// engine's persistent PlanCache.
//
// A Zeus deployment trains a plan (APFG fine-tune + configuration
// profiling + DQN) once per (dataset, query, accuracy target) and then
// serves queries from the checkpoint. This example walks the full path:
//   1. generate a dataset and persist it to a VideoStore corpus directory,
//   2. run the query on an engine whose PlanCache persists to a plan
//      directory — the cache trains the plan and checkpoints it via PlanIo,
//   3. simulate a fresh process: a new engine pointed at the same plan
//      directory reloads the dataset and the plan, and serves the query
//      with plan_seconds == 0 (no re-training) and identical results.

#include <cstdio>
#include <filesystem>

#include "engine/query_engine.h"
#include "storage/catalog.h"
#include "storage/video_store.h"
#include "video/dataset.h"

namespace {

zeus::engine::QueryEngine::Options EngineOptions(const std::string& plan_dir) {
  zeus::engine::QueryEngine::Options opts;
  opts.planner.apfg.epochs = 12;
  opts.planner.profile.max_windows_per_config = 200;
  opts.planner.trainer.episodes = 10;
  opts.cache.persist_dir = plan_dir;
  return opts;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  using zeus::video::ActionClass;
  using zeus::video::DatasetFamily;
  using zeus::video::DatasetProfile;
  using zeus::video::SyntheticDataset;

  const std::string root = fs::temp_directory_path() / "zeus_deployment";
  fs::remove_all(root);
  fs::create_directories(root + "/plans");

  // --- Train-time process -------------------------------------------------
  DatasetProfile profile =
      DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 28;
  profile.frames_per_video = 400;
  profile.action_fraction = 0.12;  // denser: keeps the demo's test split
                                   // populated with action instances
  auto dataset = SyntheticDataset::Generate(profile, 17);

  auto catalog = zeus::storage::Catalog::Open(root);
  if (!catalog.ok()) return 1;
  std::printf("catalog at %s\n", root.c_str());

  auto st = zeus::storage::SaveDataset(root + "/bdd_corpus", dataset);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  (void)catalog.value().AddDataset("bdd", "bdd_corpus");
  std::printf("persisted %zu videos to bdd_corpus/\n", dataset.num_videos());

  zeus::core::ActionQuery query;
  query.action_classes = {ActionClass::kCrossRight};
  query.accuracy_target = 0.85;

  zeus::engine::QueryEngine trainer(EngineOptions(root + "/plans"));
  if (!trainer.RegisterDataset("bdd", std::move(dataset)).ok()) return 1;
  auto first = trainer.Execute("bdd", query);
  if (!first.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "plan trained in %.1f s and checkpointed by the cache; executed via "
      "%s: F1=%.3f, %zu segment(s)\n",
      first.value().plan_seconds, first.value().executor.c_str(),
      first.value().metrics.f1, first.value().segments.size());
  (void)catalog.value().AddPlan({"bdd", "CrossRight", 0.85, "plans"});

  // --- Serving-time process (fresh state, no training) --------------------
  std::printf("\n--- simulated restart: serving from the catalog ---\n");
  auto catalog2 = zeus::storage::Catalog::Open(root);
  if (!catalog2.ok()) return 1;
  auto dir = catalog2.value().DatasetDir("bdd");
  auto entry = catalog2.value().FindPlan("bdd", "CrossRight", 0.85);
  if (!dir.ok() || !entry.has_value()) {
    std::fprintf(stderr, "catalog lookup failed\n");
    return 1;
  }
  auto reloaded = zeus::storage::LoadDataset(dir.value());
  if (!reloaded.ok()) return 1;
  std::printf("dataset (%zu videos) reloaded, starting a fresh engine...\n",
              reloaded.value().num_videos());

  zeus::engine::QueryEngine server(
      EngineOptions(root + "/" + entry->prefix));
  if (!server.RegisterDataset("bdd", std::move(reloaded).value()).ok()) {
    return 1;
  }
  auto second = server.Execute("bdd", query);
  if (!second.ok()) {
    std::fprintf(stderr, "post-restart query failed: %s\n",
                 second.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "post-restart execution: F1=%.3f, %zu segment(s), plan_seconds=%.1f "
      "(planner runs: %ld, disk loads: %ld)\n",
      second.value().metrics.f1, second.value().segments.size(),
      second.value().plan_seconds, server.plan_cache().planner_runs(),
      server.plan_cache().disk_loads());

  bool identical =
      second.value().plan_seconds == 0.0 &&
      server.plan_cache().planner_runs() == 0 &&
      zeus::engine::SameSegments(second.value(), first.value()) &&
      second.value().metrics.tp == first.value().metrics.tp &&
      second.value().metrics.fp == first.value().metrics.fp;
  std::printf("checkpoint round-trip is %s — no re-training needed.\n",
              identical ? "bit-identical" : "NOT identical (bug!)");
  return identical ? 0 : 1;
}
