// Developer diagnostic: trains the APFG for one query and dumps the full
// profiled configuration table (throughput vs. validation F1), plus the
// test-split F1 of sliding execution at the slowest / mid / fastest
// configurations. Use it to calibrate dataset difficulty so that the paper's
// inverse throughput-accuracy relation (Table 2) holds before running the
// full benches.
//
//   config_diag [family] [class] [seed] [epochs]
//     family: bdd | thumos | activitynet   (default bdd)
//     class:  action class name            (default CrossRight)

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "baselines/sliding.h"
#include "bench_util_path.h"  // resolved include of bench/bench_util.h
#include "core/executor.h"
#include "core/query_planner.h"

namespace zeus {
namespace {

int Main(int argc, char** argv) {
  common::SetLogLevel(common::LogLevel::kInfo);
  std::string family_arg = argc > 1 ? argv[1] : "bdd";
  std::string class_arg = argc > 2 ? argv[2] : "CrossRight";
  uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 17;
  int epochs = argc > 4 ? std::stoi(argv[4]) : -1;

  video::DatasetFamily family = video::DatasetFamily::kBdd100kLike;
  if (family_arg == "thumos") family = video::DatasetFamily::kThumos14Like;
  if (family_arg == "activitynet") {
    family = video::DatasetFamily::kActivityNetLike;
  }
  video::ActionClass cls = video::ParseActionClass(class_arg);
  ZEUS_CHECK(cls != video::ActionClass::kNone);

  auto profile = bench::BenchProfile(family);
  auto dataset = video::SyntheticDataset::Generate(profile, seed);
  auto stats = dataset.ComputeStatistics();
  std::printf("dataset: %s videos=%zu frames=%ld action%%=%.1f inst=%d\n",
              profile.name.c_str(), dataset.num_videos(), stats.total_frames,
              stats.percent_action_frames, stats.num_instances);

  auto opts = bench::BenchPlannerOptions(seed);
  if (epochs > 0) opts.apfg.epochs = epochs;
  opts.train_rl = false;
  core::QueryPlanner planner(&dataset, opts);
  auto plan_or = planner.PlanForClasses({cls}, 0.85);
  ZEUS_CHECK(plan_or.ok());
  auto& plan = plan_or.value();
  std::printf("APFG: train_acc=%.3f examples=%d train_s=%.1f\n",
              plan.apfg_stats.train_accuracy, plan.apfg_stats.num_examples,
              plan.apfg_stats.train_seconds);

  // Full profiled table sorted fastest -> slowest.
  std::vector<core::Configuration> configs = plan.space.configs();
  std::sort(configs.begin(), configs.end(),
            [](const auto& a, const auto& b) {
              return a.throughput_fps > b.throughput_fps;
            });
  std::printf("\n%-14s %6s %6s %12s %8s\n", "config(r,l,s)", "px", "cov",
              "tput(fps)", "valF1");
  for (const auto& c : configs) {
    std::printf("(%3d,%2d,%2d)    %6d %6d %12.0f %8.3f\n",
                c.nominal_resolution, c.nominal_segment_length,
                c.sampling_rate, c.spec.resolution_px, c.CoveredFrames(),
                c.throughput_fps, c.validation_f1);
  }

  // Pareto frontier handed to the agent.
  std::printf("\nfrontier:\n");
  for (const auto& c : plan.rl_space.configs()) {
    std::printf("(%3d,%2d,%2d)  tput=%7.0f  valF1=%.3f\n",
                c.nominal_resolution, c.nominal_segment_length,
                c.sampling_rate, c.throughput_fps, c.validation_f1);
  }

  // Sliding F1 at slowest / best-frontier / fastest configs, on both the
  // validation split (to expose profiling-estimator bias) and the test
  // split (to expose split variance).
  auto val = planner.SplitVideos(dataset.val_indices());
  auto test = planner.SplitVideos(dataset.test_indices());
  int best_frontier = plan.rl_space.SlowestId();
  for (int id : {plan.space.SlowestId(),
                 plan.rl_space.config(best_frontier).id,
                 plan.space.FastestId()}) {
    const auto& c = plan.space.config(id);
    const float calibrated = plan.apfg->ThresholdFor(c.spec);
    for (float threshold : {calibrated, 0.5f}) {
      plan.apfg->SetSpecThreshold(c.spec, threshold);
      baselines::ZeusSliding sliding(plan.space.config(id), plan.apfg.get(),
                                     plan.cost_model);
      for (const auto& [split_name, split] :
           {std::pair{"val ", &val}, std::pair{"test", &test}}) {
        auto run = sliding.Localize(*split);
        auto m = core::EvaluateVideos(*split, plan.targets, run.masks,
                                      core::EvalOptions{});
        std::printf(
            "%s sliding (%3d,%2d,%2d) thr=%.2f: F1=%.3f P=%.3f R=%.3f  [",
            split_name, c.nominal_resolution, c.nominal_segment_length,
            c.sampling_rate, threshold, m.f1, m.precision, m.recall);
        for (size_t i = 0; i < split->size(); ++i) {
          auto mv = core::EvaluateVideo(*(*split)[i], plan.targets,
                                        run.masks[i], core::EvalOptions{});
          std::printf(" %d/%d/%d", static_cast<int>(mv.tp),
                      static_cast<int>(mv.fp), static_cast<int>(mv.fn));
        }
        std::printf(" ] (tp/fp/fn per video)\n");
      }
    }
    plan.apfg->SetSpecThreshold(c.spec, calibrated);
  }

  // Autopsy of false-positive eval segments at the slowest configuration:
  // what ground-truth labels live inside each FP range?
  {
    baselines::ZeusSliding sliding(plan.space.config(plan.space.SlowestId()),
                                   plan.apfg.get(), plan.cost_model);
    auto run = sliding.Localize(test);
    const int seg = core::EvalOptions{}.eval_segment_frames;
    std::printf("\nFP autopsy (test, slowest config):\n");
    for (size_t vi = 0; vi < test.size(); ++vi) {
      const video::Video& v = *test[vi];
      for (int start = 0; start + 1 <= v.num_frames(); start += seg) {
        int end = std::min(v.num_frames(), start + seg);
        int gt = 0, pred = 0;
        std::map<video::ActionClass, int> inside;
        for (int f = start; f < end; ++f) {
          if (v.IsActionAny(f, plan.targets)) ++gt;
          if (run.masks[vi][static_cast<size_t>(f)]) ++pred;
          inside[v.Label(f)]++;
        }
        double span = end - start;
        if (pred / span > 0.5 && gt / span <= 0.5) {
          std::printf("  video %zu [%d,%d): labels{", vi, start, end);
          for (const auto& [cls, count] : inside) {
            std::printf(" %s:%d", video::ActionClassName(cls), count);
          }
          std::printf(" }\n");
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace zeus

int main(int argc, char** argv) { return zeus::Main(argc, argv); }
