// cluster_drive — load driver for the cluster smoke test. Speaks the
// binary frame protocol to a zeus_router, registers a small dataset, runs
// a fixed number of queries, and verifies the cluster's failure contract
// end to end:
//
//   - every query eventually completes (retryable failures are retried by
//     the driver, exactly as a real client would);
//   - every completed answer is bit-identical to the first one (failover
//     must never change results);
//   - with --expect-failover, the final stats must show >= 1 failover
//     (CI kills a shard mid-run and asserts the router noticed);
//   - with --expect-zero-unavailability (replication >= 2), the drill is
//     strict: after a warm-up query and a wait for all replicas to catch
//     up, the measured queries tolerate ZERO errors — not even retryable
//     ones — every answer must be kCertain and planner_runs must not move.
//     CI kills the dataset's PRIMARY mid-run; the router's in-call replica
//     failover has to absorb it invisibly.
//
//   - with --stream, the drill is the live-ingest variant: after the same
//     warm-up and replica-convergence wait, it attaches --subscribers
//     standing SubscribeQueries through the router, then appends one
//     stream block per tick while every subscriber polls for the
//     incremental answer covering the new epoch. CI kills the PRIMARY
//     mid-ingest; appends may retry (they are idempotent by construction —
//     absolute targets at the shard boundary), but every delivered update
//     must be kCertain and planner_runs must not move: the subscribers
//     re-attach through the router invisibly, with no replanning and no
//     degraded answers.
//
//   cluster_drive --router host:port [--queries N] [--dataset NAME]
//                 [--videos N] [--frames N] [--retry-timeout-s S]
//                 [--expect-failover] [--expect-zero-unavailability]
//                 [--stream] [--ticks N] [--subscribers N]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "cluster/remote_shard.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --router host:port [--queries N] [--dataset NAME]\n"
               "       [--videos N] [--frames N] [--retry-timeout-s S]\n"
               "       [--expect-failover] [--expect-zero-unavailability]\n"
               "       [--stream] [--ticks N] [--subscribers N]\n",
               argv0);
  return 2;
}

constexpr char kSql[] =
    "SELECT segment_ids FROM UDF(video) "
    "WHERE action_class = 'cross-right' AND accuracy >= 80%";

bool SameAnswer(const zeus::engine::QueryResult& a,
                const zeus::engine::QueryResult& b) {
  return zeus::engine::SameSegments(a, b) && a.metrics.tp == b.metrics.tp &&
         a.metrics.fp == b.metrics.fp && a.metrics.fn == b.metrics.fn &&
         a.metrics.tn == b.metrics.tn;
}

}  // namespace

int main(int argc, char** argv) {
  // CI watches this tool's output through a file to time its shard kill:
  // progress lines must appear as they happen, not in 4K flushes.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::string router;
  int queries = 12;
  int retry_timeout_s = 120;
  bool expect_failover = false;
  bool expect_zero_unavailability = false;
  bool stream = false;
  int ticks = 10;
  int subscribers = 2;
  zeus::cluster::DatasetSpec spec;
  spec.name = "smoke";
  spec.num_videos = 10;
  spec.frames_per_video = 160;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--router") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      router = v;
    } else if (arg == "--queries") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      queries = std::atoi(v);
    } else if (arg == "--dataset") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      spec.name = v;
    } else if (arg == "--videos") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      spec.num_videos = std::atoi(v);
    } else if (arg == "--frames") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      spec.frames_per_video = std::atoi(v);
    } else if (arg == "--retry-timeout-s") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      retry_timeout_s = std::atoi(v);
    } else if (arg == "--expect-failover") {
      expect_failover = true;
    } else if (arg == "--expect-zero-unavailability") {
      expect_zero_unavailability = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--ticks") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      ticks = std::atoi(v);
    } else if (arg == "--subscribers") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      subscribers = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (router.empty()) return Usage(argv[0]);
  // The stream drill is always strict: it exists to prove a primary kill is
  // invisible to attached subscribers, which presumes replication >= 2 and
  // the same warm-up / replica-convergence preamble.
  if (stream) expect_zero_unavailability = true;

  // The router speaks the same protocol as a shard, so the shard client
  // doubles as the cluster client.
  zeus::cluster::RemoteShard::Options copts;
  const size_t colon = router.rfind(':');
  if (colon != std::string::npos) {
    copts.host = router.substr(0, colon);
    copts.port = std::atoi(router.c_str() + colon + 1);
  } else {
    copts.port = std::atoi(router.c_str());
  }
  copts.name = "drive";
  zeus::cluster::RemoteShard client(copts);

  auto reg = client.RegisterDataset(spec);
  if (!reg.ok()) {
    std::fprintf(stderr, "cluster_drive: register failed: %s\n",
                 reg.status().ToString().c_str());
    return 1;
  }
  std::printf("registered dataset '%s' (%llu plan(s) warmed)\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(reg.value()));

  zeus::cluster::ExecRequest req;
  req.dataset = spec.name;
  req.sql = kSql;

  zeus::engine::QueryResult reference;
  bool have_reference = false;
  int completed = 0;
  int retries = 0;
  long planner_baseline = -1;

  if (expect_zero_unavailability) {
    // Warm-up: the first query trains the plan and the router propagates it
    // to every replica. Retries are allowed here — this is setup, not the
    // measured window.
    const auto warm_deadline = std::chrono::steady_clock::now() +
                               std::chrono::seconds(retry_timeout_s);
    for (;;) {
      auto result = client.Execute(req);
      if (result.ok()) {
        reference = result.value();
        have_reference = true;
        std::printf("warmup ok (%zu segments, executor %s, %s)\n",
                    reference.segments.size(), reference.executor.c_str(),
                    zeus::engine::ConsistencyName(reference.consistency));
        break;
      }
      if (!zeus::common::IsRetryable(result.status().code()) ||
          std::chrono::steady_clock::now() >= warm_deadline) {
        std::fprintf(stderr, "cluster_drive: warmup query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    // Wait for every replica to reach the committed epoch so the measured
    // window starts from a converged group, then freeze the planner_runs
    // baseline: the strict window must not train a single plan.
    const auto sync_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      auto stats = client.Stats();
      if (!stats.ok()) {
        std::fprintf(stderr, "cluster_drive: stats failed during sync: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      if (stats.value().replication < 2) {
        std::fprintf(stderr,
                     "cluster_drive: --expect-zero-unavailability needs "
                     "replication >= 2, router reports %d\n",
                     stats.value().replication);
        return 1;
      }
      if (stats.value().replicas_behind == 0) {
        planner_baseline = stats.value().stats.planner_runs;
        break;
      }
      if (std::chrono::steady_clock::now() >= sync_deadline) {
        std::fprintf(stderr,
                     "cluster_drive: %lld replica(s) still behind at "
                     "deadline — plan propagation never converged\n",
                     static_cast<long long>(stats.value().replicas_behind));
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    std::printf("replicas converged (planner_runs=%ld); strict window open\n",
                planner_baseline);
  }

  if (stream) {
    // Live-ingest drill: attach the subscribers, then append one stream
    // block per tick while every subscriber polls its way to the new
    // epoch. Appends and polls retry on retryable errors (the append is
    // idempotent by construction; the poll cursor makes re-reads safe),
    // but a delivered update that is not kCertain — or any planner
    // movement — fails the drill immediately.
    struct Sub {
      uint64_t id = 0;
      uint64_t last_seq = 0;
      uint64_t last_epoch = 0;
    };
    std::vector<Sub> subs(static_cast<size_t>(subscribers));
    for (size_t i = 0; i < subs.size(); ++i) {
      zeus::cluster::SubscribeRequest sreq;
      sreq.dataset = spec.name;
      sreq.sql = kSql;
      sreq.sub_id = 0;  // router-assigned
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(retry_timeout_s);
      for (;;) {
        auto reply = client.Subscribe(sreq);
        if (reply.ok()) {
          subs[i].id = reply.value().sub_id;
          break;
        }
        if (!zeus::common::IsRetryable(reply.status().code()) ||
            std::chrono::steady_clock::now() >= deadline) {
          std::fprintf(stderr, "cluster_drive: subscribe %zu failed: %s\n", i,
                       reply.status().ToString().c_str());
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    }
    std::printf("%d subscriber(s) attached\n", subscribers);

    // One poll helper: advance `sub` until its freshest delivered update
    // covers `epoch`. Every update must match the reference answer
    // (bit-identical across appends is NOT expected — the window grew —
    // so only consistency and ordering are asserted here) and be certain.
    auto poll_until = [&](Sub& sub, uint64_t epoch, const char* who) -> bool {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(retry_timeout_s);
      while (sub.last_epoch < epoch) {
        zeus::cluster::StreamPollRequest preq;
        preq.sub_id = sub.id;
        preq.after_seq = sub.last_seq;
        preq.timeout_ms = 5000;
        auto update = client.StreamPoll(preq, /*deadline_ms=*/15000);
        if (!update.ok()) {
          if (!zeus::common::IsRetryable(update.status().code())) {
            std::fprintf(stderr, "cluster_drive: %s poll failed: %s\n", who,
                         update.status().ToString().c_str());
            return false;
          }
          if (std::chrono::steady_clock::now() >= deadline) {
            std::fprintf(stderr,
                         "cluster_drive: %s never reached epoch %llu: %s\n",
                         who, static_cast<unsigned long long>(epoch),
                         update.status().ToString().c_str());
            return false;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(250));
          continue;
        }
        if (update.value().seq <= sub.last_seq) {
          std::fprintf(stderr,
                       "cluster_drive: %s seq went backwards (%llu after "
                       "%llu)\n",
                       who, static_cast<unsigned long long>(update.value().seq),
                       static_cast<unsigned long long>(sub.last_seq));
          return false;
        }
        if (update.value().result.consistency !=
            zeus::engine::Consistency::kCertain) {
          std::fprintf(stderr,
                       "cluster_drive: %s received a %s incremental answer "
                       "(%s)\n",
                       who,
                       zeus::engine::ConsistencyName(
                           update.value().result.consistency),
                       update.value().result.divergence.c_str());
          return false;
        }
        sub.last_seq = update.value().seq;
        sub.last_epoch = update.value().result.frame_epoch;
      }
      return true;
    };

    // Drain each subscriber's immediate first window (epoch 0 at attach).
    for (size_t i = 0; i < subs.size(); ++i) {
      if (!poll_until(subs[i], 0, "subscriber")) return 1;
      if (subs[i].last_seq == 0) {
        // last_epoch starts at 0, so poll at least once explicitly.
        zeus::cluster::StreamPollRequest preq;
        preq.sub_id = subs[i].id;
        preq.after_seq = 0;
        preq.timeout_ms = 30000;
        auto update = client.StreamPoll(preq, /*deadline_ms=*/45000);
        if (!update.ok()) {
          std::fprintf(stderr, "cluster_drive: first window failed: %s\n",
                       update.status().ToString().c_str());
          return 1;
        }
        subs[i].last_seq = update.value().seq;
        subs[i].last_epoch = update.value().result.frame_epoch;
      }
    }
    std::printf("first windows delivered; ingest begins\n");

    for (int tick = 1; tick <= ticks; ++tick) {
      zeus::cluster::AppendFramesRequest areq;
      areq.name = spec.name;
      areq.relative_frames = 64;  // one deterministic stream block
      uint64_t epoch = 0;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(retry_timeout_s);
      for (;;) {
        auto out = client.AppendFrames(areq);
        if (out.ok()) {
          epoch = out.value().frame_epoch;
          break;
        }
        if (!zeus::common::IsRetryable(out.status().code()) ||
            std::chrono::steady_clock::now() >= deadline) {
          std::fprintf(stderr, "cluster_drive: append %d failed: %s\n", tick,
                       out.status().ToString().c_str());
          return 1;
        }
        ++retries;
        std::printf("append %d retrying: %s\n", tick,
                    out.status().ToString().c_str());
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
      for (size_t i = 0; i < subs.size(); ++i) {
        if (!poll_until(subs[i], epoch, "subscriber")) return 1;
      }
      std::printf("tick %d ok (epoch %llu, all %d subscriber(s) caught up)\n",
                  tick, static_cast<unsigned long long>(epoch), subscribers);
      // Pace the ingest so CI's mid-stream primary kill (timed off
      // "tick 2 ok") lands while appends and polls are still flowing.
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }

    for (const Sub& sub : subs) {
      // Best effort: a failed unsubscribe is not a drill failure (the
      // router treats a gone id as Ok — idempotent).
      (void)client.Unsubscribe(sub.id);
    }

    zeus::cluster::StatsReply s;
    const auto stats_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      auto stats = client.Stats();
      if (!stats.ok()) {
        std::fprintf(stderr, "cluster_drive: final stats failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      s = stats.value();
      if (!expect_failover || s.failovers >= 1 ||
          std::chrono::steady_clock::now() >= stats_deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    std::printf(
        "stream done: %d tick(s), %d subscriber(s), %d retries; cluster: "
        "%d shard(s) alive, %lld failover(s), %lld read failover(s), "
        "appends=%ld appended_frames=%ld stream_results=%ld dropped=%ld "
        "%lld certain / %lld degraded answer(s), planner_runs=%ld\n",
        ticks, subscribers, retries, s.num_shards,
        static_cast<long long>(s.failovers),
        static_cast<long long>(s.read_failovers), s.stats.appends,
        s.stats.appended_frames, s.stats.stream_results,
        s.stats.stream_dropped, static_cast<long long>(s.certain_answers),
        static_cast<long long>(s.degraded_answers), s.stats.planner_runs);
    if (expect_failover && s.failovers < 1) {
      std::fprintf(stderr,
                   "cluster_drive: expected a failover but stats report "
                   "%lld\n",
                   static_cast<long long>(s.failovers));
      return 1;
    }
    if (s.stats.planner_runs != planner_baseline) {
      std::fprintf(stderr,
                   "cluster_drive: planner ran during the stream drill "
                   "(%ld vs baseline %ld) — a window re-execution or "
                   "re-attach fell off the cached plan\n",
                   s.stats.planner_runs, planner_baseline);
      return 1;
    }
    return 0;
  }

  for (int q = 0; q < queries; ++q) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(retry_timeout_s);
    for (;;) {
      auto result = client.Execute(req);
      if (result.ok()) {
        if (!have_reference) {
          reference = result.value();
          have_reference = true;
        } else if (!SameAnswer(reference, result.value())) {
          std::fprintf(stderr,
                       "cluster_drive: query %d answer diverged "
                       "(%zu vs %zu segments) — failover changed a result\n",
                       q, reference.segments.size(),
                       result.value().segments.size());
          return 1;
        }
        if (expect_zero_unavailability &&
            result.value().consistency !=
                zeus::engine::Consistency::kCertain) {
          std::fprintf(stderr,
                       "cluster_drive: query %d answered %s inside the "
                       "strict window (%s)\n",
                       q,
                       zeus::engine::ConsistencyName(
                           result.value().consistency),
                       result.value().divergence.c_str());
          return 1;
        }
        ++completed;
        std::printf("query %d ok (%zu segments, executor %s, %s)\n", q,
                    result.value().segments.size(),
                    result.value().executor.c_str(),
                    zeus::engine::ConsistencyName(
                        result.value().consistency));
        break;
      }
      if (expect_zero_unavailability) {
        // Inside the strict window *any* error — retryable included — is a
        // client-visible unavailability event, which is exactly what the
        // replicated failover contract forbids.
        std::fprintf(stderr,
                     "cluster_drive: query %d failed inside the "
                     "zero-unavailability window: %s\n",
                     q, result.status().ToString().c_str());
        return 1;
      }
      if (!zeus::common::IsRetryable(result.status().code())) {
        std::fprintf(stderr, "cluster_drive: query %d failed terminally: %s\n",
                     q, result.status().ToString().c_str());
        return 1;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "cluster_drive: query %d still failing at "
                             "deadline: %s\n",
                     q, result.status().ToString().c_str());
        return 1;
      }
      ++retries;
      std::printf("query %d retrying: %s\n", q,
                  result.status().ToString().c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    if (expect_zero_unavailability) {
      // Pace the strict window so CI's mid-run primary kill lands while
      // queries are still flowing (the kill is timed off "query 2 ok").
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  }

  // Failover detection is eventually consistent (the health checker needs
  // a few missed beats to declare a shard dead), so with --expect-failover
  // the final stats poll waits for the counter instead of racing it.
  zeus::cluster::StatsReply s;
  const auto stats_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "cluster_drive: final stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    s = stats.value();
    if (!expect_failover || s.failovers >= 1 ||
        std::chrono::steady_clock::now() >= stats_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  std::printf(
      "done: %d/%d queries, %d client retries; cluster: %d shard(s) alive, "
      "%lld failover(s), %lld dataset(s) re-homed, %lld read failover(s), "
      "%lld certain / %lld degraded answer(s), completed=%ld "
      "planner_runs=%ld disk_loads=%ld\n",
      completed, queries, retries, s.num_shards,
      static_cast<long long>(s.failovers),
      static_cast<long long>(s.rehomed_datasets),
      static_cast<long long>(s.read_failovers),
      static_cast<long long>(s.certain_answers),
      static_cast<long long>(s.degraded_answers), s.stats.completed,
      s.stats.planner_runs, s.stats.disk_loads);

  if (completed != queries) return 1;
  if (expect_failover && s.failovers < 1) {
    std::fprintf(stderr,
                 "cluster_drive: expected a failover but stats report %lld\n",
                 static_cast<long long>(s.failovers));
    return 1;
  }
  if (expect_zero_unavailability && s.stats.planner_runs != planner_baseline) {
    std::fprintf(stderr,
                 "cluster_drive: planner ran during the strict window "
                 "(%ld vs baseline %ld) — a replica served without a "
                 "propagated plan\n",
                 s.stats.planner_runs, planner_baseline);
    return 1;
  }
  return 0;
}
