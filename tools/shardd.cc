// shardd — one shard of the Zeus cluster: a TCP server wrapping one
// QueryEngine, warm-startable from a shared plan-catalog directory.
//
//   shardd [--host H] [--port P] [--persist-dir DIR] [--workers N]
//          [--fast-planner] [--port-file PATH] [--name NAME]
//
// --port 0 (default) picks an ephemeral port; --port-file writes the bound
// port atomically once the server is listening, so launchers (and the
// cluster tests) can discover it without racing a partially-written file.
// --fast-planner selects the reduced planner profile every process in a
// test cluster must share: bit-identity across shards requires identical
// planner knobs.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/shard_server.h"
#include "common/fileutil.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--persist-dir DIR] "
               "[--workers N] [--fast-planner] [--port-file PATH] "
               "[--name NAME]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  zeus::cluster::ShardServer::Options opts;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.port = std::atoi(v);
    } else if (arg == "--persist-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.engine.cache.persist_dir = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.engine.num_workers = std::atoi(v);
    } else if (arg == "--fast-planner") {
      opts.engine.planner = zeus::core::QueryPlanner::ReducedOptions();
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port_file = v;
    } else if (arg == "--name") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.name = v;
    } else {
      return Usage(argv[0]);
    }
  }

  zeus::cluster::ShardServer server(std::move(opts));
  zeus::common::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "shardd: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    st = zeus::common::AtomicWriteFile(port_file,
                                       std::to_string(server.port()) + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "shardd: cannot write port file: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  return 0;
}
