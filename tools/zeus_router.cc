// zeus_router — the cluster front door: routes datasets over a consistent
// ring of shardd processes, health-checks them, and fails datasets over to
// ring successors when a shard dies. Also serves Prometheus metrics: a
// plain `GET /metrics` on the same port returns the aggregated group stats
// in text exposition format.
//
//   zeus_router --shard host:port [--shard host:port ...]
//               [--host H] [--port P] [--port-file PATH]
//               [--health-interval-ms N] [--misses-to-dead N]
//               [--replication R] [--name NAME]
//
// `--shard P` (no colon) is shorthand for 127.0.0.1:P. `--replication R`
// places each dataset on R shards (ring owner + R-1 successors); with
// R >= 2 a dead primary is a zero-unavailability event — reads fail over
// to a live replica inside the call.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "cluster/router.h"
#include "common/fileutil.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --shard host:port [--shard host:port ...]\n"
               "       [--host H] [--port P] [--port-file PATH]\n"
               "       [--health-interval-ms N] [--misses-to-dead N]\n"
               "       [--replication R] [--name NAME]\n",
               argv0);
  return 2;
}

zeus::cluster::Router::Endpoint ParseEndpoint(const std::string& arg) {
  zeus::cluster::Router::Endpoint ep;
  const size_t colon = arg.rfind(':');
  if (colon == std::string::npos) {
    ep.port = std::atoi(arg.c_str());
  } else {
    ep.host = arg.substr(0, colon);
    ep.port = std::atoi(arg.c_str() + colon + 1);
  }
  return ep;
}

}  // namespace

int main(int argc, char** argv) {
  zeus::cluster::Router::Options opts;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--shard") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      opts.shards.push_back(ParseEndpoint(v));
    } else if (arg == "--host") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      opts.host = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      opts.port = std::atoi(v);
    } else if (arg == "--port-file") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      port_file = v;
    } else if (arg == "--health-interval-ms") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      opts.health_interval_ms = std::atoi(v);
    } else if (arg == "--misses-to-dead") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      opts.misses_to_dead = std::atoi(v);
    } else if (arg == "--replication") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      opts.replication = std::atoi(v);
    } else if (arg == "--name") {
      if ((v = next()) == nullptr) return Usage(argv[0]);
      opts.name = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.shards.empty()) return Usage(argv[0]);

  zeus::cluster::Router router(std::move(opts));
  zeus::common::Status st = router.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "zeus_router: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    st = zeus::common::AtomicWriteFile(port_file,
                                       std::to_string(router.port()) + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "zeus_router: cannot write port file: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  router.Stop();
  return 0;
}
