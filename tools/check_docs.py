#!/usr/bin/env python3
"""Documentation gate: dead-link and anchor-drift check. Stdlib only.

Checks, in order:

1. Every relative markdown link/image in the scanned .md files points at
   a path that exists in the repo (fragments stripped; http(s)/mailto
   links are deliberately NOT fetched -- the check must be hermetic).
2. The tier-1 verify command appears verbatim in ROADMAP.md, so the one
   command a contributor must know cannot silently rot.
3. docs/ARCHITECTURE.md links to the three reference docs
   (PROTOCOL.md, OPERATIONS.md, METRICS.md) -- they are reachable from
   the entry point, not orphaned.

Exit 0 when everything holds; exit 1 with one line per problem.
Run from anywhere: paths resolve against the repo root (this file's
parent's parent).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

TIER1 = ("cmake -B build -S . && cmake --build build -j && "
         "cd build && ctest --output-on-failure -j")

REQUIRED_FROM_ARCHITECTURE = [
    "PROTOCOL.md",
    "OPERATIONS.md",
    "METRICS.md",
    "ACCURACY.md",
]

# [text](target) and ![alt](target); target may carry an optional title.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# Fenced code blocks: links inside them are examples, not navigation.
FENCE_RE = re.compile(r"^(```|~~~)")


def scanned_files():
    files = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def strip_fences(text):
    out, fenced = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def check_links(md, problems):
    text = strip_fences(md.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page fragment
            continue
        resolved = (md.parent / path).resolve()
        try:
            resolved.relative_to(REPO)
        except ValueError:
            problems.append(f"{md.relative_to(REPO)}: link escapes the "
                            f"repo: {target}")
            continue
        if not resolved.exists():
            problems.append(f"{md.relative_to(REPO)}: dead link: {target}")


def main():
    problems = []

    files = scanned_files()
    if not files:
        problems.append("no markdown files found -- wrong working tree?")
    for md in files:
        check_links(md, problems)

    roadmap = REPO / "ROADMAP.md"
    if not roadmap.is_file() or TIER1 not in roadmap.read_text(
            encoding="utf-8"):
        problems.append("ROADMAP.md does not carry the tier-1 verify "
                        "command verbatim: " + TIER1)

    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not arch.is_file():
        problems.append("docs/ARCHITECTURE.md is missing")
    else:
        text = arch.read_text(encoding="utf-8")
        for doc in REQUIRED_FROM_ARCHITECTURE:
            if f"({doc})" not in text:
                problems.append(f"docs/ARCHITECTURE.md does not link to "
                                f"{doc} -- the reference docs must be "
                                f"reachable from the entry point")

    for p in problems:
        print(f"check_docs: {p}", file=sys.stderr)
    if problems:
        print(f"check_docs: FAILED ({len(problems)} problem(s) across "
              f"{len(files)} file(s))", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(files)} markdown file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
