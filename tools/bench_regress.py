#!/usr/bin/env python3
"""Merge bench outputs into one BENCH_PR.json and gate regressions.

Used by the CI bench-smoke job (see docs/CI.md for the schema):

  # Combine a zeus bench JSON (bench_util.h BenchJson) with a
  # google-benchmark JSON (bench_micro_substrate --benchmark_format=json):
  bench_regress.py merge --zeus fig8.json --gbench micro.json -o BENCH_PR.json

  # Fail (exit 1) when any metric regressed > 25% against the baseline:
  bench_regress.py check --current BENCH_PR.json \
      --baseline bench/baseline.json --tolerance 0.25

  # Same, with per-metric gate/tolerance overrides (bench/gate_overrides.json):
  bench_regress.py check --current BENCH_PR.json \
      --baseline bench/baseline.json --overrides bench/gate_overrides.json

Metric direction is inferred from the name: metrics ending in _seconds,
_ns, _ms or named real_time/cpu_time are lower-is-better; everything else
(fps, gflops, queries_per_sec, f1, items_per_second) is higher-is-better.
Accuracy-family metrics (achieved_accuracy, achieved_confidence, _f1,
_precision, _recall) are pinned higher-is-better EXPLICITLY, before the
time-suffix check, so no future time-like spelling can silently flip the
direction of an accuracy gate (docs/ACCURACY.md).
Count-like metrics (planner_runs, clients_served, invocations) are
informational and never gated, and so are the serving layer's
self-observation metrics (peak_queue_depth, the *_p50/_p95/_p99_seconds
percentiles, and the autoscaler's resizes / final_shards): queue depth,
tail latency and resize counts depend on scheduler noise and on what the
autoscaling policy chose to do, not on code getting slower — they are a
trail, not a gate, BY DEFAULT.

The overrides file opts specific metrics back in (or out), with their own
tolerance — that is how the substrate tail-latency p95 records gate
strictly while the serving-layer percentiles stay informational. Schema:

  {"overrides": [
     {"pattern": "<fnmatch over the folded metric name>",
      "gate": true|false,          # optional: force gated / informational
      "tolerance": 0.5},           # optional: per-metric tolerance
     ...]}

Every override whose pattern matches a metric applies in file order, so
the LAST matching entry wins per field (a broad opt-in can be narrowed by
a later, more specific opt-out).

A record's optional "context" object (workload dimensions, e.g.
{"num_shards": 2} for the sharded serving bench) is folded into the metric
name as a sorted "[key=value,...]" qualifier, so measurements taken under
different dimensions are different metrics — the gate can never compare a
--shards 2 run against a --shards 1 baseline. Only standard-library
Python.
"""

import argparse
import fnmatch
import json
import sys

LOWER_IS_BETTER_SUFFIXES = ("_seconds", "_ns", "_ms", "real_time", "cpu_time")
# Checked FIRST: a drop in achieved accuracy/confidence is a contract
# regression, never an improvement, whatever the metric's spelling ends
# with. The serving path is deterministic per accuracy band (modeled cost,
# fixed seeds), so these gate tightly (bench/gate_overrides.json).
HIGHER_IS_BETTER_SUFFIXES = ("achieved_accuracy", "achieved_confidence",
                             "_f1", "_precision", "_recall")
# Counters are informational, and each measurement is gated ONCE: fig8's
# queries_per_sec is wall_seconds inverted and gbench's real_time is
# items_per_second inverted — gating both sides would count one noise
# spike twice. The serving self-observation metrics (queue depth high-water
# marks, latency percentiles, autoscaler resize counts / final shard
# counts) are likewise informational: they record what the serving layer
# observed and decided, not a pass/fail perf property. Percentile metrics
# (_p50/_p95/_p99_seconds) default to informational too; the overrides
# file opts chosen ones back in with a tolerance sized to their noise.
UNGATED = ("planner_runs", "clients_served", "invocations", "iterations",
           "queries_per_sec", "real_time", "cpu_time",
           "peak_queue_depth", "_p50_seconds", "_p95_seconds",
           "_p99_seconds", "resizes", "final_shards")


def lower_is_better(metric):
    if metric.endswith(HIGHER_IS_BETTER_SUFFIXES):
        return False
    return metric.endswith(LOWER_IS_BETTER_SUFFIXES)


def gated(metric):
    return not any(metric.endswith(u) for u in UNGATED)


def load_overrides(path):
    """bench/gate_overrides.json -> list of {pattern, gate?, tolerance?}."""
    with open(path) as f:
        doc = json.load(f)
    overrides = doc.get("overrides", [])
    for o in overrides:
        if "pattern" not in o:
            raise ValueError("override entry missing 'pattern': %r" % (o,))
    return overrides


def effective_policy(name, default_tolerance, overrides):
    """(gated, tolerance) for one metric after applying overrides.

    Overrides apply in file order, so the last matching entry wins per
    field; entries that omit a field leave it unchanged.
    """
    is_gated = gated(name)
    tolerance = default_tolerance
    for o in overrides:
        if fnmatch.fnmatchcase(name, o["pattern"]):
            if "gate" in o:
                is_gated = bool(o["gate"])
            if "tolerance" in o:
                tolerance = float(o["tolerance"])
    return is_gated, tolerance


def format_context(context):
    """{"num_shards": 2.0} -> "[num_shards=2]" (sorted, ints un-floated)."""
    if not context:
        return ""
    parts = []
    for key in sorted(context):
        value = context[key]
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        parts.append("%s=%s" % (key, value))
    return "[%s]" % ",".join(parts)


def load_zeus(path):
    """bench_util.h BenchJson schema -> {record[context]/metric: value}."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    bench = doc.get("bench", "bench")
    for record in doc.get("records", []):
        qualifier = format_context(record.get("context"))
        for metric, value in record.get("metrics", {}).items():
            out["%s/%s%s/%s" % (bench, record["name"], qualifier, metric)] = \
                value
    return out


def load_gbench(path):
    """google-benchmark --benchmark_format=json -> {record/metric: value}."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = "bench_micro_substrate/%s" % b["name"]
        out[name + "/real_time"] = b["real_time"]
        if "items_per_second" in b:
            out[name + "/items_per_second"] = b["items_per_second"]
    return out


def cmd_merge(args):
    metrics = {}
    for path in args.zeus or []:
        metrics.update(load_zeus(path))
    for path in args.gbench or []:
        metrics.update(load_gbench(path))
    if not metrics:
        print("bench_regress: no metrics collected", file=sys.stderr)
        return 1
    with open(args.output, "w") as f:
        json.dump({"metrics": metrics}, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote %s (%d metrics)" % (args.output, len(metrics)))
    return 0


def cmd_check(args):
    with open(args.current) as f:
        current = json.load(f)["metrics"]
    with open(args.baseline) as f:
        baseline = json.load(f)["metrics"]
    overrides = (load_overrides(args.overrides)
                 if getattr(args, "overrides", None) else [])

    regressions = []
    print("%-72s %12s %12s %8s" % ("metric", "baseline", "current", "delta"))
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        is_gated, tolerance = effective_policy(name, args.tolerance, overrides)
        if cur is None:
            if is_gated:
                regressions.append("%s: missing from current run" % name)
            else:
                print("%-72s %12.4g %12s     missing (informational)"
                      % (name, base, "-"))
            continue
        if base == 0:
            delta = 0.0
        elif lower_is_better(name):
            delta = (cur - base) / base  # positive = slower = worse
        else:
            delta = (base - cur) / base  # positive = less = worse
        flag = ""
        if is_gated and delta > tolerance:
            flag = "  << REGRESSION"
            regressions.append(
                "%s: %.4g -> %.4g (%.0f%% worse, tolerance %.0f%%)"
                % (name, base, cur, 100 * delta, 100 * tolerance))
        elif not is_gated:
            flag = "  (informational)"
        print("%-72s %12.4g %12.4g %+7.1f%%%s"
              % (name, base, cur, 100 * delta, flag))
    for name in sorted(set(current) - set(baseline)):
        print("%-72s %12s %12.4g     new" % (name, "-", current[name]))

    if regressions:
        print("\n%d regression(s) beyond %.0f%% tolerance:"
              % (len(regressions), 100 * args.tolerance), file=sys.stderr)
        for r in regressions:
            print("  " + r, file=sys.stderr)
        return 1
    print("\nno regressions beyond %.0f%% tolerance" % (100 * args.tolerance))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    merge = sub.add_parser("merge", help="combine bench JSONs into one file")
    merge.add_argument("--zeus", action="append",
                       help="bench_util.h BenchJson output (repeatable)")
    merge.add_argument("--gbench", action="append",
                       help="google-benchmark JSON output (repeatable)")
    merge.add_argument("-o", "--output", required=True)
    merge.set_defaults(func=cmd_merge)

    check = sub.add_parser("check", help="gate current metrics vs a baseline")
    check.add_argument("--current", required=True)
    check.add_argument("--baseline", required=True)
    check.add_argument("--tolerance", type=float, default=0.25)
    check.add_argument("--overrides", default=None,
                       help="per-metric gate/tolerance overrides JSON "
                            "(see module docstring)")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
