#!/usr/bin/env python3
"""Unit tests for bench_regress.py (stdlib only, runs in CI).

Covers the gate semantics the bench-smoke and nightly jobs lean on:
missing-key handling (gated vs informational), new benchmarks, the
exactly-at-threshold boundary (strictly-greater gate), direction
inference, and context folding (a --shards 2 measurement can never be
compared against a --shards 1 baseline).

Run with:  python3 -m unittest discover -s tools -p 'test_*.py'
"""

import argparse
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_regress  # noqa: E402


def write_json(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(doc, f)
    return path


class CheckTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_check(self, baseline, current, tolerance=0.25):
        args = argparse.Namespace(
            current=write_json(self.tmp.name, "current.json",
                               {"metrics": current}),
            baseline=write_json(self.tmp.name, "baseline.json",
                                {"metrics": baseline}),
            tolerance=tolerance)
        return bench_regress.cmd_check(args)

    def test_identical_metrics_pass(self):
        metrics = {"fig8/q/wall_seconds": 10.0, "fig8/q/queries_per_sec": 1.2}
        self.assertEqual(self.run_check(metrics, dict(metrics)), 0)

    def test_missing_gated_key_fails(self):
        # A gated metric that vanished from the current run is a regression
        # (a silently-dropped benchmark must not pass the gate).
        baseline = {"fig8/q/wall_seconds": 10.0}
        self.assertEqual(self.run_check(baseline, {}), 1)

    def test_missing_informational_key_passes(self):
        # Ungated (count-like) metrics may come and go without failing.
        baseline = {"fig8/q/planner_runs": 3.0, "fig8/q/wall_seconds": 10.0}
        current = {"fig8/q/wall_seconds": 10.0}
        self.assertEqual(self.run_check(baseline, current), 0)

    def test_new_benchmark_passes(self):
        # Metrics present only in the current run are reported as new, not
        # gated — a fresh benchmark must not need a baseline to land.
        baseline = {"fig8/q/wall_seconds": 10.0}
        current = {"fig8/q/wall_seconds": 10.0,
                   "fig8/new_record/wall_seconds": 99.0}
        self.assertEqual(self.run_check(baseline, current), 0)

    def test_exactly_at_threshold_passes(self):
        # The gate is strictly-greater: exactly 25% worse is still inside a
        # 25% tolerance.
        baseline = {"fig8/q/wall_seconds": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 125.0}), 0)

    def test_just_beyond_threshold_fails(self):
        baseline = {"fig8/q/wall_seconds": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 125.1}), 1)

    def test_lower_is_better_direction(self):
        # Getting faster can never trip the wall-seconds gate.
        baseline = {"fig8/q/wall_seconds": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 1.0}), 0)

    def test_higher_is_better_direction(self):
        baseline = {"fig8/q/throughput_fps": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/throughput_fps": 70.0}), 1)
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/throughput_fps": 1000.0}), 0)

    def test_zero_baseline_never_divides(self):
        baseline = {"fig8/q/wall_seconds": 0.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 5.0}), 0)

    def test_serving_observability_metrics_are_informational(self):
        # Queue-depth high-water marks, latency percentiles and the
        # autoscaler's resize/final-shard counts are a trail, not a gate:
        # arbitrarily "worse" values must never fail the check.
        baseline = {
            "fig8/c[autoscale=1,num_shards=1]/peak_queue_depth": 4.0,
            "fig8/c[autoscale=1,num_shards=1]/queue_wait_p95_seconds": 0.1,
            "fig8/c[autoscale=1,num_shards=1]/exec_p95_seconds": 0.2,
            "fig8/c[autoscale=1,num_shards=1]/resizes": 1.0,
            "fig8/c[autoscale=1,num_shards=1]/final_shards": 2.0,
        }
        current = {
            "fig8/c[autoscale=1,num_shards=1]/peak_queue_depth": 400.0,
            "fig8/c[autoscale=1,num_shards=1]/queue_wait_p95_seconds": 90.0,
            "fig8/c[autoscale=1,num_shards=1]/exec_p95_seconds": 90.0,
            "fig8/c[autoscale=1,num_shards=1]/resizes": 9.0,
            "fig8/c[autoscale=1,num_shards=1]/final_shards": 4.0,
        }
        self.assertEqual(self.run_check(baseline, current), 0)
        for name in baseline:
            self.assertFalse(bench_regress.gated(name), name)
        # Plain wall-clock stays gated: the new suffixes must not blanket
        # every *_seconds metric.
        self.assertTrue(bench_regress.gated("fig8/q/wall_seconds"))


class ContextTest(unittest.TestCase):
    def test_format_context_sorts_and_unfloats(self):
        self.assertEqual(
            bench_regress.format_context({"num_shards": 2.0, "clients": 4.0}),
            "[clients=4,num_shards=2]")
        self.assertEqual(bench_regress.format_context({}), "")
        self.assertEqual(bench_regress.format_context(None), "")

    def test_load_zeus_folds_context_into_name(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_json(tmp, "z.json", {
                "bench": "bench_fig8_end_to_end",
                "records": [
                    {"name": "concurrent/clients4",
                     "context": {"num_shards": 2},
                     "metrics": {"wall_seconds": 7.5}},
                    {"name": "plain", "metrics": {"f1": 0.9}},
                ]})
            metrics = bench_regress.load_zeus(path)
        self.assertEqual(metrics, {
            "bench_fig8_end_to_end/concurrent/clients4[num_shards=2]"
            "/wall_seconds": 7.5,
            "bench_fig8_end_to_end/plain/f1": 0.9,
        })

    def test_cross_shard_counts_are_never_compared(self):
        # The same record measured at a different shard count is a DIFFERENT
        # metric: the 1-shard baseline shows up as missing (gated failure),
        # not as a bogus 2-shard-vs-1-shard delta.
        base_doc = {"bench": "b", "records": [
            {"name": "r", "context": {"num_shards": 1},
             "metrics": {"wall_seconds": 10.0}}]}
        cur_doc = {"bench": "b", "records": [
            {"name": "r", "context": {"num_shards": 2},
             "metrics": {"wall_seconds": 500.0}}]}
        with tempfile.TemporaryDirectory() as tmp:
            base = bench_regress.load_zeus(write_json(tmp, "b.json", base_doc))
            cur = bench_regress.load_zeus(write_json(tmp, "c.json", cur_doc))
        self.assertEqual(set(base) & set(cur), set())


class MergeTest(unittest.TestCase):
    def test_merge_combines_zeus_and_gbench(self):
        with tempfile.TemporaryDirectory() as tmp:
            zeus = write_json(tmp, "z.json", {
                "bench": "fig8", "records": [
                    {"name": "r", "context": {"num_shards": 1},
                     "metrics": {"wall_seconds": 3.0}}]})
            gbench = write_json(tmp, "g.json", {"benchmarks": [
                {"name": "BM_MatMul/256", "run_type": "iteration",
                 "real_time": 123.0, "items_per_second": 4.5e9},
                {"name": "BM_MatMul/256_mean", "run_type": "aggregate",
                 "real_time": 999.0},
            ]})
            out = os.path.join(tmp, "merged.json")
            args = argparse.Namespace(zeus=[zeus], gbench=[gbench],
                                      output=out)
            self.assertEqual(bench_regress.cmd_merge(args), 0)
            with open(out) as f:
                merged = json.load(f)["metrics"]
        self.assertEqual(merged, {
            "fig8/r[num_shards=1]/wall_seconds": 3.0,
            "bench_micro_substrate/BM_MatMul/256/real_time": 123.0,
            "bench_micro_substrate/BM_MatMul/256/items_per_second": 4.5e9,
        })

    def test_merge_with_no_metrics_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "merged.json")
            args = argparse.Namespace(zeus=None, gbench=None, output=out)
            self.assertEqual(bench_regress.cmd_merge(args), 1)


if __name__ == "__main__":
    unittest.main()
