#!/usr/bin/env python3
"""Unit tests for bench_regress.py (stdlib only, runs in CI).

Covers the gate semantics the bench-smoke and nightly jobs lean on:
missing-key handling (gated vs informational), new benchmarks, the
exactly-at-threshold boundary (strictly-greater gate), direction
inference, and context folding (a --shards 2 measurement can never be
compared against a --shards 1 baseline).

Run with:  python3 -m unittest discover -s tools -p 'test_*.py'
"""

import argparse
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_regress  # noqa: E402


def write_json(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(doc, f)
    return path


class CheckHarness(unittest.TestCase):
    """Shared tmpdir + cmd_check driver for the gate-behavior tests."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_check(self, baseline, current, tolerance=0.25, overrides=None):
        overrides_path = None
        if overrides is not None:
            overrides_path = write_json(self.tmp.name, "overrides.json",
                                        {"overrides": overrides})
        args = argparse.Namespace(
            current=write_json(self.tmp.name, "current.json",
                               {"metrics": current}),
            baseline=write_json(self.tmp.name, "baseline.json",
                                {"metrics": baseline}),
            tolerance=tolerance,
            overrides=overrides_path)
        return bench_regress.cmd_check(args)


class CheckTest(CheckHarness):
    def test_identical_metrics_pass(self):
        metrics = {"fig8/q/wall_seconds": 10.0, "fig8/q/queries_per_sec": 1.2}
        self.assertEqual(self.run_check(metrics, dict(metrics)), 0)

    def test_missing_gated_key_fails(self):
        # A gated metric that vanished from the current run is a regression
        # (a silently-dropped benchmark must not pass the gate).
        baseline = {"fig8/q/wall_seconds": 10.0}
        self.assertEqual(self.run_check(baseline, {}), 1)

    def test_missing_informational_key_passes(self):
        # Ungated (count-like) metrics may come and go without failing.
        baseline = {"fig8/q/planner_runs": 3.0, "fig8/q/wall_seconds": 10.0}
        current = {"fig8/q/wall_seconds": 10.0}
        self.assertEqual(self.run_check(baseline, current), 0)

    def test_new_benchmark_passes(self):
        # Metrics present only in the current run are reported as new, not
        # gated — a fresh benchmark must not need a baseline to land.
        baseline = {"fig8/q/wall_seconds": 10.0}
        current = {"fig8/q/wall_seconds": 10.0,
                   "fig8/new_record/wall_seconds": 99.0}
        self.assertEqual(self.run_check(baseline, current), 0)

    def test_exactly_at_threshold_passes(self):
        # The gate is strictly-greater: exactly 25% worse is still inside a
        # 25% tolerance.
        baseline = {"fig8/q/wall_seconds": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 125.0}), 0)

    def test_just_beyond_threshold_fails(self):
        baseline = {"fig8/q/wall_seconds": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 125.1}), 1)

    def test_lower_is_better_direction(self):
        # Getting faster can never trip the wall-seconds gate.
        baseline = {"fig8/q/wall_seconds": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 1.0}), 0)

    def test_higher_is_better_direction(self):
        baseline = {"fig8/q/throughput_fps": 100.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/throughput_fps": 70.0}), 1)
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/throughput_fps": 1000.0}), 0)

    def test_zero_baseline_never_divides(self):
        baseline = {"fig8/q/wall_seconds": 0.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 5.0}), 0)

    def test_serving_observability_metrics_are_informational(self):
        # Queue-depth high-water marks, latency percentiles and the
        # autoscaler's resize/final-shard counts are a trail, not a gate:
        # arbitrarily "worse" values must never fail the check.
        baseline = {
            "fig8/c[autoscale=1,num_shards=1]/peak_queue_depth": 4.0,
            "fig8/c[autoscale=1,num_shards=1]/queue_wait_p95_seconds": 0.1,
            "fig8/c[autoscale=1,num_shards=1]/exec_p95_seconds": 0.2,
            "fig8/c[autoscale=1,num_shards=1]/resizes": 1.0,
            "fig8/c[autoscale=1,num_shards=1]/final_shards": 2.0,
        }
        current = {
            "fig8/c[autoscale=1,num_shards=1]/peak_queue_depth": 400.0,
            "fig8/c[autoscale=1,num_shards=1]/queue_wait_p95_seconds": 90.0,
            "fig8/c[autoscale=1,num_shards=1]/exec_p95_seconds": 90.0,
            "fig8/c[autoscale=1,num_shards=1]/resizes": 9.0,
            "fig8/c[autoscale=1,num_shards=1]/final_shards": 4.0,
        }
        self.assertEqual(self.run_check(baseline, current), 0)
        for name in baseline:
            self.assertFalse(bench_regress.gated(name), name)
        # Plain wall-clock stays gated: the new suffixes must not blanket
        # every *_seconds metric.
        self.assertTrue(bench_regress.gated("fig8/q/wall_seconds"))


TAIL = ("bench_micro_substrate/tail/conv3d_stem/gemm"
        "[batch_size=8,compute_path=1,threads=1]/forward_p95_seconds")


class OverridesTest(CheckHarness):
    """Per-metric gate/tolerance overrides (bench/gate_overrides.json)."""

    def test_percentiles_informational_without_overrides(self):
        # p50/p95/p99 metrics never gate by default — any drift passes.
        baseline = {TAIL: 0.001,
                    TAIL.replace("_p95_", "_p50_"): 0.001,
                    TAIL.replace("_p95_", "_p99_"): 0.001}
        current = {k: 100.0 for k in baseline}
        self.assertEqual(self.run_check(baseline, current), 0)
        for name in baseline:
            self.assertFalse(bench_regress.gated(name), name)

    def test_override_gates_p95_strictly(self):
        # The shipped overrides opt the substrate tail p95 in: past its
        # tolerance the check fails even though the suffix is UNGATED.
        overrides = [{"pattern": "*/forward_p95_seconds",
                      "gate": True, "tolerance": 0.5}]
        baseline = {TAIL: 0.001}
        self.assertEqual(
            self.run_check(baseline, {TAIL: 0.0016}, overrides=overrides), 1)
        # Within the override's own tolerance it still passes.
        self.assertEqual(
            self.run_check(baseline, {TAIL: 0.0014}, overrides=overrides), 0)

    def test_overridden_gated_metric_missing_fails(self):
        # Once opted in, a vanished measurement is a regression, exactly
        # like any other gated metric.
        overrides = [{"pattern": "*/forward_p95_seconds", "gate": True}]
        self.assertEqual(
            self.run_check({TAIL: 0.001}, {}, overrides=overrides), 1)

    def test_override_can_relax_gate(self):
        # gate: false turns a normally-gated metric informational.
        overrides = [{"pattern": "*/wall_seconds", "gate": False}]
        baseline = {"fig8/q/wall_seconds": 10.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 500.0},
                           overrides=overrides), 0)

    def test_override_tolerance_only(self):
        # An entry with only a tolerance keeps the default gate decision.
        overrides = [{"pattern": "*/wall_seconds", "tolerance": 2.0}]
        baseline = {"fig8/q/wall_seconds": 10.0}
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 25.0},
                           overrides=overrides), 0)
        self.assertEqual(
            self.run_check(baseline, {"fig8/q/wall_seconds": 35.0},
                           overrides=overrides), 1)

    def test_last_matching_override_wins(self):
        # A broad opt-in narrowed by a later, more specific opt-out.
        overrides = [
            {"pattern": "*_p95_seconds", "gate": True, "tolerance": 0.5},
            {"pattern": "*r3d_forward*", "gate": False},
        ]
        r3d = TAIL.replace("conv3d_stem", "r3d_forward")
        baseline = {TAIL: 0.001, r3d: 0.001}
        # conv3d stays gated (fails), r3d was opted back out (passes alone).
        self.assertEqual(
            self.run_check(baseline, {TAIL: 0.01, r3d: 0.01},
                           overrides=overrides), 1)
        self.assertEqual(
            self.run_check({r3d: 0.001}, {r3d: 0.01}, overrides=overrides), 0)

    def test_effective_policy_fields_compose(self):
        overrides = [
            {"pattern": "*_p95_seconds", "gate": True},
            {"pattern": "*_p95_seconds", "tolerance": 0.75},
        ]
        is_gated, tol = bench_regress.effective_policy(TAIL, 0.25, overrides)
        self.assertTrue(is_gated)
        self.assertEqual(tol, 0.75)

    def test_missing_pattern_key_rejected(self):
        path = write_json(self.tmp.name, "bad.json",
                          {"overrides": [{"gate": True}]})
        with self.assertRaises(ValueError):
            bench_regress.load_overrides(path)

    def test_shipped_overrides_file_parses_and_matches(self):
        # The checked-in bench/gate_overrides.json must parse and actually
        # opt in the substrate tail p95 records it claims to gate.
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        shipped = os.path.join(repo, "bench", "gate_overrides.json")
        overrides = bench_regress.load_overrides(shipped)
        self.assertTrue(overrides)
        is_gated, tol = bench_regress.effective_policy(TAIL, 0.25, overrides)
        self.assertTrue(is_gated)
        self.assertGreater(tol, 0.25)

    def test_shipped_overrides_gate_fig9_accuracy_tightly(self):
        # The accuracy-budgeted serving bench (docs/ACCURACY.md): achieved
        # accuracy and confidence gate TIGHTER than the default tolerance,
        # while its noisy wall clock and the scheduler-dependent flood
        # counters stay informational.
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        shipped = os.path.join(repo, "bench", "gate_overrides.json")
        overrides = bench_regress.load_overrides(shipped)
        for metric in ("achieved_accuracy", "achieved_confidence"):
            name = ("bench_fig9_accuracy_targets/CrossRight/band_0.80/%s"
                    % metric)
            is_gated, tol = bench_regress.effective_policy(
                name, 0.25, overrides)
            self.assertTrue(is_gated, name)
            self.assertLess(tol, 0.25, name)
        for name in ("bench_fig9_accuracy_targets/CrossRight/band_0.80"
                     "/wall_seconds",
                     "bench_fig9_accuracy_targets/flood/shed_answers",
                     "bench_fig9_accuracy_targets/flood/strict_rejected"):
            is_gated, _ = bench_regress.effective_policy(
                name, 0.25, overrides)
            self.assertFalse(is_gated, name)

    def test_shipped_overrides_gate_stream_soak_hit_ratio(self):
        # The live-stream soak (bench_stream_soak): the feature-cache hit
        # ratio IS the window-reuse contract, so it gates (tighter than
        # default, higher-is-better); the timing-derived ingest fps /
        # wall clock are scheduler-noise trails and stay informational,
        # like the update-latency percentiles (UNGATED suffix).
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        shipped = os.path.join(repo, "bench", "gate_overrides.json")
        overrides = bench_regress.load_overrides(shipped)
        rec = "bench_stream_soak/soak[subscribers=2,ticks=6]"
        is_gated, tol = bench_regress.effective_policy(
            rec + "/feature_hit_ratio", 0.25, overrides)
        self.assertTrue(is_gated)
        self.assertLess(tol, 0.25)
        self.assertFalse(
            bench_regress.lower_is_better(rec + "/feature_hit_ratio"))
        for name in (rec + "/ingest_fps", rec + "/wall_seconds",
                     rec + "/update_p95_seconds"):
            is_gated, _ = bench_regress.effective_policy(
                name, 0.25, overrides)
            self.assertFalse(is_gated, name)


class DirectionTest(unittest.TestCase):
    """Name-based direction inference, accuracy pinning included."""

    def test_time_suffixes_are_lower_is_better(self):
        for name in ("fig8/q/wall_seconds", "m/x/latency_ns", "m/x/step_ms",
                     "bench_micro_substrate/BM_MatMul/256/real_time"):
            self.assertTrue(bench_regress.lower_is_better(name), name)

    def test_accuracy_metrics_are_higher_is_better(self):
        for name in ("bench_fig9_accuracy_targets/CrossRight/band_0.80"
                     "/achieved_accuracy",
                     "bench_fig9_accuracy_targets/budget/half"
                     "/achieved_confidence",
                     "fig8/q/method_f1", "fig8/q/method_precision",
                     "fig8/q/method_recall"):
            self.assertFalse(bench_regress.lower_is_better(name), name)

    def test_accuracy_pinning_precedes_time_suffixes(self):
        # The accuracy family wins even when a time-like spelling would
        # otherwise match — the explicit list is checked first, so no
        # renaming can silently flip an accuracy gate's direction.
        self.assertFalse(bench_regress.lower_is_better("q/real_time_f1"))
        self.assertTrue(bench_regress.lower_is_better("q/rt_real_time"))


class AccuracyGateTest(CheckHarness):
    """The fig9 accuracy gate: a drop fails, a gain never does."""

    OVERRIDES = [{"pattern": "*/achieved_accuracy",
                  "gate": True, "tolerance": 0.1}]
    NAME = "bench_fig9_accuracy_targets/CrossRight/band_0.80/achieved_accuracy"

    def test_accuracy_drop_beyond_tolerance_fails(self):
        self.assertEqual(
            self.run_check({self.NAME: 0.80}, {self.NAME: 0.70},
                           overrides=self.OVERRIDES), 1)

    def test_accuracy_drop_within_tolerance_passes(self):
        self.assertEqual(
            self.run_check({self.NAME: 0.80}, {self.NAME: 0.75},
                           overrides=self.OVERRIDES), 0)

    def test_accuracy_gain_always_passes(self):
        self.assertEqual(
            self.run_check({self.NAME: 0.80}, {self.NAME: 0.95},
                           overrides=self.OVERRIDES), 0)


class ContextTest(unittest.TestCase):
    def test_format_context_sorts_and_unfloats(self):
        self.assertEqual(
            bench_regress.format_context({"num_shards": 2.0, "clients": 4.0}),
            "[clients=4,num_shards=2]")
        self.assertEqual(bench_regress.format_context({}), "")
        self.assertEqual(bench_regress.format_context(None), "")

    def test_load_zeus_folds_context_into_name(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_json(tmp, "z.json", {
                "bench": "bench_fig8_end_to_end",
                "records": [
                    {"name": "concurrent/clients4",
                     "context": {"num_shards": 2},
                     "metrics": {"wall_seconds": 7.5}},
                    {"name": "plain", "metrics": {"f1": 0.9}},
                ]})
            metrics = bench_regress.load_zeus(path)
        self.assertEqual(metrics, {
            "bench_fig8_end_to_end/concurrent/clients4[num_shards=2]"
            "/wall_seconds": 7.5,
            "bench_fig8_end_to_end/plain/f1": 0.9,
        })

    def test_cross_shard_counts_are_never_compared(self):
        # The same record measured at a different shard count is a DIFFERENT
        # metric: the 1-shard baseline shows up as missing (gated failure),
        # not as a bogus 2-shard-vs-1-shard delta.
        base_doc = {"bench": "b", "records": [
            {"name": "r", "context": {"num_shards": 1},
             "metrics": {"wall_seconds": 10.0}}]}
        cur_doc = {"bench": "b", "records": [
            {"name": "r", "context": {"num_shards": 2},
             "metrics": {"wall_seconds": 500.0}}]}
        with tempfile.TemporaryDirectory() as tmp:
            base = bench_regress.load_zeus(write_json(tmp, "b.json", base_doc))
            cur = bench_regress.load_zeus(write_json(tmp, "c.json", cur_doc))
        self.assertEqual(set(base) & set(cur), set())


class MergeTest(unittest.TestCase):
    def test_merge_combines_zeus_and_gbench(self):
        with tempfile.TemporaryDirectory() as tmp:
            zeus = write_json(tmp, "z.json", {
                "bench": "fig8", "records": [
                    {"name": "r", "context": {"num_shards": 1},
                     "metrics": {"wall_seconds": 3.0}}]})
            gbench = write_json(tmp, "g.json", {"benchmarks": [
                {"name": "BM_MatMul/256", "run_type": "iteration",
                 "real_time": 123.0, "items_per_second": 4.5e9},
                {"name": "BM_MatMul/256_mean", "run_type": "aggregate",
                 "real_time": 999.0},
            ]})
            out = os.path.join(tmp, "merged.json")
            args = argparse.Namespace(zeus=[zeus], gbench=[gbench],
                                      output=out)
            self.assertEqual(bench_regress.cmd_merge(args), 0)
            with open(out) as f:
                merged = json.load(f)["metrics"]
        self.assertEqual(merged, {
            "fig8/r[num_shards=1]/wall_seconds": 3.0,
            "bench_micro_substrate/BM_MatMul/256/real_time": 123.0,
            "bench_micro_substrate/BM_MatMul/256/items_per_second": 4.5e9,
        })

    def test_merge_with_no_metrics_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "merged.json")
            args = argparse.Namespace(zeus=None, gbench=None, output=out)
            self.assertEqual(bench_regress.cmd_merge(args), 1)


if __name__ == "__main__":
    unittest.main()
