#!/usr/bin/env bash
# run_cluster.sh — launch a local zeus cluster: N shardd processes sharing
# one plan-catalog directory, fronted by a zeus_router.
#
#   tools/run_cluster.sh [N] [--build-dir DIR] [--work-dir DIR]
#                        [--router-port P] [--replication R] [--foreground]
#
#   N              number of shards (default 3)
#   --build-dir    where shardd/zeus_router live (default: ./build)
#   --work-dir     scratch dir for port files, logs, and the shared plan
#                  catalog (default: mktemp -d; printed on start)
#   --router-port  fixed router port (default 0 = ephemeral; the actual
#                  port is written to $WORK_DIR/router.port either way)
#   --replication  replicas per dataset (default 1; use 2+ so a dead
#                  primary is a zero-unavailability event)
#   --foreground   keep running until Ctrl-C (default: print endpoints and
#                  keep running — this IS the foreground; the flag exists
#                  for symmetry/explicitness in scripts)
#
# On exit (any exit: Ctrl-C, kill, error) every launched process is torn
# down by the EXIT trap. Logs live in $WORK_DIR/{router,shard<i>}.log; CI
# uploads them when the smoke test fails.
#
# Readiness: each daemon writes its bound port to a --port-file only after
# its listener is up, so waiting for the port files IS the readiness wait.

set -euo pipefail

NUM_SHARDS=3
BUILD_DIR="build"
WORK_DIR=""
ROUTER_PORT=0
REPLICATION=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)   BUILD_DIR="$2"; shift 2 ;;
    --work-dir)    WORK_DIR="$2"; shift 2 ;;
    --router-port) ROUTER_PORT="$2"; shift 2 ;;
    --replication) REPLICATION="$2"; shift 2 ;;
    --foreground)  shift ;;
    -h|--help)     sed -n '2,22p' "$0"; exit 0 ;;
    -*)            echo "unknown flag: $1" >&2; exit 2 ;;
    *)             NUM_SHARDS="$1"; shift ;;
  esac
done

SHARDD="$BUILD_DIR/shardd"
ROUTER="$BUILD_DIR/zeus_router"
for bin in "$SHARDD" "$ROUTER"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_cluster.sh: missing binary $bin (build the repo first)" >&2
    exit 1
  fi
done

if [[ -z "$WORK_DIR" ]]; then
  WORK_DIR="$(mktemp -d /tmp/zeus_cluster.XXXXXX)"
fi
mkdir -p "$WORK_DIR/plans"

PIDS=()
cleanup() {
  # Kill the router first so nothing routes to dying shards, then the
  # shards; SIGKILL stragglers. Runs on EVERY exit path. Also sweep the
  # work dir's *.pid files: a failover drill may have spawned replacement
  # shards AFTER this script recorded $PIDS, and those must not outlive us.
  local sweep=()
  for f in "$WORK_DIR"/*.pid; do
    [[ -s "$f" ]] && sweep+=("$(cat "$f")")
  done
  for pid in "${PIDS[@]:-}" "${sweep[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  sleep 0.3
  for pid in "${PIDS[@]:-}" "${sweep[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_for_port_file() {
  local file="$1" name="$2" deadline=$((SECONDS + 30))
  while [[ ! -s "$file" ]]; do
    if (( SECONDS >= deadline )); then
      echo "run_cluster.sh: $name never became ready (no $file)" >&2
      exit 1
    fi
    sleep 0.1
  done
}

SHARD_ARGS=()
for ((i = 0; i < NUM_SHARDS; ++i)); do
  PORT_FILE="$WORK_DIR/shard$i.port"
  rm -f "$PORT_FILE"
  "$SHARDD" --persist-dir "$WORK_DIR/plans" --fast-planner --workers 2 \
            --port-file "$PORT_FILE" --name "shard$i" \
            >"$WORK_DIR/shard$i.log" 2>&1 &
  PIDS+=($!)
  echo "$!" >"$WORK_DIR/shard$i.pid"
done

for ((i = 0; i < NUM_SHARDS; ++i)); do
  wait_for_port_file "$WORK_DIR/shard$i.port" "shard$i"
  SHARD_ARGS+=(--shard "127.0.0.1:$(cat "$WORK_DIR/shard$i.port")")
done

ROUTER_PORT_FILE="$WORK_DIR/router.port"
rm -f "$ROUTER_PORT_FILE"
"$ROUTER" "${SHARD_ARGS[@]}" --port "$ROUTER_PORT" \
          --port-file "$ROUTER_PORT_FILE" --replication "$REPLICATION" \
          --name router \
          >"$WORK_DIR/router.log" 2>&1 &
PIDS+=($!)
echo "$!" >"$WORK_DIR/router.pid"
wait_for_port_file "$ROUTER_PORT_FILE" "router"

echo "cluster up: $NUM_SHARDS shard(s), replication $REPLICATION, router on 127.0.0.1:$(cat "$ROUTER_PORT_FILE")"
echo "work dir:   $WORK_DIR (port files, pid files, logs, shared plan catalog)"
echo "metrics:    curl -s http://127.0.0.1:$(cat "$ROUTER_PORT_FILE")/metrics"
echo "stop:       Ctrl-C (the EXIT trap tears everything down)"

# Keep the trap alive until interrupted or every child died.
wait
