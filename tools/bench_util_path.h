#ifndef ZEUS_TOOLS_BENCH_UTIL_PATH_H_
#define ZEUS_TOOLS_BENCH_UTIL_PATH_H_

// Tools share the bench-scale profiles and planner options so diagnostics
// measure exactly what the bench binaries will run.
#include "bench_util.h"  // from bench/

#endif  // ZEUS_TOOLS_BENCH_UTIL_PATH_H_
